// Shared helpers for the benchmark harness (one binary per paper table or
// figure; see DESIGN.md §3 for the experiment index).
#ifndef MSN_BENCH_BENCH_UTIL_H
#define MSN_BENCH_BENCH_UTIL_H

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/msri.h"
#include "netgen/netgen.h"
#include "obs/stats.h"
#include "tech/tech.h"

namespace msn::bench {

/// The paper's Section VI workload: 10 random nets per cardinality on a
/// 1 cm grid, insertion spacing <= 800 um, >= 1 point per wire.
inline std::vector<RcTree> ExperimentNets(const Technology& tech,
                                          std::size_t num_terminals,
                                          std::size_t count = 10,
                                          double spacing_um = 800.0) {
  std::vector<RcTree> nets;
  nets.reserve(count);
  for (std::uint64_t seed = 1; seed <= count; ++seed) {
    NetConfig cfg;
    cfg.seed = seed;
    cfg.num_terminals = num_terminals;
    cfg.insertion_spacing_um = spacing_um;
    nets.push_back(BuildExperimentNet(cfg, tech));
  }
  return nets;
}

/// The paper's driver-sizing setup: 1X..4X drivers and receivers.
inline MsriOptions SizingOptions(const Technology& tech) {
  MsriOptions opt;
  opt.insert_repeaters = false;
  opt.size_drivers = true;
  opt.sizing_library = DriverSizingLibrary(tech, {1.0, 2.0, 3.0, 4.0});
  return opt;
}

/// Wall-clock seconds consumed by `fn()`.
template <typename Fn>
double TimeSeconds(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

/// Machine-readable bench output (the BENCH_*.json trajectory files):
/// collects one obs::RunStats snapshot per measured configuration and, when
/// the MSN_STATS_JSON environment variable names a path, writes
///
///   {"schema": "msn-bench-stats-v1", "bench": "<name>",
///    "runs": [<RunStats JSON>, ...]}
///
/// so results stay comparable across PRs (schema in docs/OBSERVABILITY.md).
/// With the variable unset the collector is disabled and Add() is free.
class StatsTrajectory {
 public:
  explicit StatsTrajectory(std::string bench_name)
      : bench_(std::move(bench_name)) {
    const char* env = std::getenv("MSN_STATS_JSON");
    if (env != nullptr && *env != '\0') path_ = env;
  }

  bool Enabled() const { return !path_.empty(); }

  /// Snapshots `run` as the next element of the "runs" array.
  void Add(const obs::RunStats& run) {
    if (Enabled()) runs_.push_back(run.JsonString());
  }

  /// Writes the trajectory file; a no-op (returning false) when disabled.
  bool Write() const {
    if (!Enabled()) return false;
    std::ofstream out(path_);
    if (!out.good()) {
      std::cerr << "MSN_STATS_JSON: cannot write '" << path_ << "'\n";
      return false;
    }
    out << "{\"schema\":\"msn-bench-stats-v1\",\"bench\":\"" << bench_
        << "\",\"runs\":[";
    for (std::size_t i = 0; i < runs_.size(); ++i) {
      if (i > 0) out << ',';
      out << runs_[i];
    }
    out << "]}\n";
    std::cout << "wrote " << path_ << " (" << runs_.size() << " runs)\n";
    return true;
  }

 private:
  std::string bench_;
  std::string path_;
  std::vector<std::string> runs_;
};

}  // namespace msn::bench

#endif  // MSN_BENCH_BENCH_UTIL_H
