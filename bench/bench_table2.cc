// Reproduces paper Table II: driver sizing versus optimal repeater
// insertion on random multisource nets.
//
// Workload: ten random nets each of 10 and 20 terminals on a 1 cm x 1 cm
// grid; Steiner topologies; insertion points at most ~800 um apart with at
// least one per wire.  All terminals are sources and sinks with AT = DD = 0
// (the unaugmented RC-diameter measure).  Columns 3-7 are averages of
// per-net values normalized to the min-cost solution (no repeaters, 1X/1X
// drivers):
//   col 3/4: minimum diameter achievable by driver sizing, and its cost;
//   col 5  : cheapest repeater insertion matching that sizing diameter;
//   col 6/7: minimum-diameter repeater insertion, and its cost.
#include <iostream>

#include "bench_util.h"
#include "core/ard.h"
#include "io/table.h"

int main() {
  using msn::TablePrinter;
  const msn::Technology tech = msn::DefaultTechnology();

  std::cout << "=== Table II: driver sizing vs repeater insertion ===\n"
            << "(averages over 10 random nets per cardinality, normalized"
               " to the min-cost solution)\n\n";

  TablePrinter t({"|net|", "avg #ip", "DS diam", "DS cost", "RI cost@DS",
                  "RI diam", "RI cost"});

  for (const std::size_t n : {std::size_t{10}, std::size_t{20}}) {
    const std::vector<msn::RcTree> nets = msn::bench::ExperimentNets(tech, n);
    double sum_ip = 0.0;
    double ds_diam = 0.0, ds_cost = 0.0, ri_cost_at_ds = 0.0;
    double ri_diam = 0.0, ri_cost = 0.0;
    std::size_t matched = 0;

    for (const msn::RcTree& tree : nets) {
      sum_ip += static_cast<double>(tree.InsertionPoints().size());
      const double base_diam = msn::ComputeArd(tree, tech).ard_ps;
      const double base_cost = 2.0 * static_cast<double>(n);

      const msn::MsriResult sized =
          msn::RunMsri(tree, tech, msn::bench::SizingOptions(tech));
      const msn::TradeoffPoint* ds = sized.MinArd();
      ds_diam += ds->ard_ps / base_diam;
      ds_cost += ds->cost / base_cost;

      const msn::MsriResult rep = msn::RunMsri(tree, tech);
      const msn::TradeoffPoint* min_diam = rep.MinArd();
      ri_diam += min_diam->ard_ps / base_diam;
      ri_cost += min_diam->cost / base_cost;

      if (const msn::TradeoffPoint* p = rep.MinCostFeasible(ds->ard_ps)) {
        ri_cost_at_ds += p->cost / base_cost;
        ++matched;
      }
    }
    const double k = static_cast<double>(nets.size());
    t.AddRow({std::to_string(n), TablePrinter::Num(sum_ip / k, 1),
              TablePrinter::Num(ds_diam / k, 2),
              TablePrinter::Num(ds_cost / k, 2),
              TablePrinter::Num(
                  matched ? ri_cost_at_ds / static_cast<double>(matched)
                          : 0.0,
                  2),
              TablePrinter::Num(ri_diam / k, 2),
              TablePrinter::Num(ri_cost / k, 2)});
  }
  t.Print(std::cout);
  std::cout << "\npaper's shape: repeater insertion reaches a lower"
               " normalized diameter than sizing (0.55 vs 0.73 on 10-pin"
               " nets), and matching the sizing diameter by repeaters is"
               " cheaper than the sizing solution itself.\n";
  return 0;
}
