// Extension study: topology choice versus optimizer effectiveness.
//
// The paper's conclusions suggest a multisource P-Tree — topology
// construction driven by the ARD objective.  As a first step, this bench
// quantifies how much the routing topology matters before and after
// repeater insertion: iterated 1-Steiner (minimum wirelength), plain
// rectilinear MST, and Prim–Dijkstra trees at c = 0.25 / 0.5 (shorter
// source paths, more wire).
#include <iostream>

#include "bench_util.h"
#include "core/ard.h"
#include "io/table.h"
#include "steiner/one_steiner.h"
#include "steiner/prim_dijkstra.h"
#include "steiner/ptree.h"
#include "flow/refine.h"
#include "steiner/spanning.h"

namespace {

msn::RcTree MakeNet(const msn::SteinerTree& topo,
                    const msn::Technology& tech, std::size_t n) {
  const std::vector<msn::TerminalParams> params(
      n, msn::DefaultTerminal(tech));
  msn::RcTree tree = msn::RcTree::FromSteinerTree(topo, tech.wire, params);
  tree.AddInsertionPoints(800.0);
  return tree;
}

}  // namespace

int main() {
  using msn::TablePrinter;
  const msn::Technology tech = msn::DefaultTechnology();
  constexpr std::size_t kTerminals = 10;
  constexpr std::size_t kSeeds = 5;

  std::cout << "=== Extension: topology choice vs optimized diameter ===\n"
            << "(10-pin nets; ARD in ps averaged over " << kSeeds
            << " seeds; wirelength in kum)\n\n";

  TablePrinter t({"topology", "wirelen", "base ARD", "opt ARD",
                  "opt cost", "#rep"});

  struct Gen {
    const char* name;
    msn::SteinerTree (*build)(const std::vector<msn::Point>&);
  };
  const Gen gens[] = {
      {"1-Steiner",
       [](const std::vector<msn::Point>& p) {
         return msn::IteratedOneSteiner(p);
       }},
      {"MST", [](const std::vector<msn::Point>& p) {
         return msn::RectilinearMst(p);
       }},
      {"PD c=0.25", [](const std::vector<msn::Point>& p) {
         return msn::PrimDijkstra(p, 0, 0.25);
       }},
      {"PD c=0.5", [](const std::vector<msn::Point>& p) {
         return msn::PrimDijkstra(p, 0, 0.5);
       }},
      {"P-Tree", [](const std::vector<msn::Point>& p) {
         return msn::PTree(p);
       }},
      {"1-Steiner+refine", [](const std::vector<msn::Point>& p) {
         const std::vector<msn::TerminalParams> params(
             p.size(), msn::DefaultTerminal(msn::DefaultTechnology()));
         return msn::RefineTopologyForArd(msn::IteratedOneSteiner(p),
                                          msn::DefaultTechnology(), params)
             .tree;
       }},
  };

  for (const Gen& gen : gens) {
    double wirelen = 0.0, base = 0.0, opt = 0.0, cost = 0.0, reps = 0.0;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      const std::vector<msn::Point> pts =
          msn::RandomTerminals(seed, kTerminals, 10'000);
      const msn::RcTree tree = MakeNet(gen.build(pts), tech, kTerminals);
      wirelen += tree.TotalLengthUm() / 1000.0;
      base += msn::ComputeArd(tree, tech).ard_ps;
      const msn::MsriResult r = msn::RunMsri(tree, tech);
      opt += r.MinArd()->ard_ps;
      cost += r.MinArd()->cost;
      reps += static_cast<double>(r.MinArd()->num_repeaters);
    }
    const double k = static_cast<double>(kSeeds);
    t.AddRow({gen.name, TablePrinter::Num(wirelen / k, 1),
              TablePrinter::Num(base / k, 0), TablePrinter::Num(opt / k, 0),
              TablePrinter::Num(cost / k, 0),
              TablePrinter::Num(reps / k, 1)});
  }
  t.Print(std::cout);
  std::cout << "\nexpected shape: minimum-wirelength topologies"
               " (1-Steiner) lead after optimization on symmetric\n"
               "multisource nets — with every terminal a source, shorter"
               " total wire beats shorter root paths;\n"
               "Prim-Dijkstra's extra wire costs every source/sink pair."
               "  A true ARD-driven topology search\n"
               "(multisource P-Tree) remains future work, as in the"
               " paper; the ARD-driven local refinement row is its first"
               " step.\n";
  return 0;
}
