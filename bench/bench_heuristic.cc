// Baseline comparison: greedy local optimization (the [24]-style
// heuristic the paper's optimal DP supersedes) versus RunMsri.
//
// For each Table II net we report the minimum diameter each method
// reaches, the cost it pays for it, and the run time.  The paper's thesis
// is that optimality is *tractable*; the interesting questions are how
// much quality the heuristic loses and whether the DP's optimality is
// affordable.
#include <iostream>

#include "baseline/greedy.h"
#include "bench_util.h"
#include "core/ard.h"
#include "io/table.h"

int main() {
  using msn::TablePrinter;
  const msn::Technology tech = msn::DefaultTechnology();

  std::cout << "=== Greedy local optimization vs optimal DP ===\n"
            << "(Table II workload; diameter normalized to the min-cost"
               " solution)\n\n";

  TablePrinter t({"|net|", "greedy diam", "greedy cost", "DP diam",
                  "DP cost@greedy-diam", "greedy s/net", "DP s/net"});

  for (const std::size_t n : {std::size_t{10}, std::size_t{20}}) {
    const std::vector<msn::RcTree> nets = msn::bench::ExperimentNets(tech, n);
    double gdiam = 0.0, gcost = 0.0, ddiam = 0.0, dmatch = 0.0;
    double gsecs = 0.0, dsecs = 0.0;
    std::size_t matched = 0;
    for (const msn::RcTree& tree : nets) {
      const double base = msn::ComputeArd(tree, tech).ard_ps;
      const double base_cost = 2.0 * static_cast<double>(n);

      msn::GreedyResult greedy;
      gsecs += msn::bench::TimeSeconds(
          [&] { greedy = msn::GreedyMsri(tree, tech); });
      gdiam += greedy.best.ard_ps / base;
      gcost += greedy.best.cost / base_cost;

      msn::MsriResult dp;
      dsecs += msn::bench::TimeSeconds(
          [&] { dp = msn::RunMsri(tree, tech); });
      ddiam += dp.MinArd()->ard_ps / base;
      if (const msn::TradeoffPoint* p =
              dp.MinCostFeasible(greedy.best.ard_ps)) {
        dmatch += p->cost / base_cost;
        ++matched;
      }
    }
    const double k = static_cast<double>(nets.size());
    t.AddRow({std::to_string(n), TablePrinter::Num(gdiam / k, 3),
              TablePrinter::Num(gcost / k, 2),
              TablePrinter::Num(ddiam / k, 3),
              TablePrinter::Num(
                  matched ? dmatch / static_cast<double>(matched) : 0.0, 2),
              TablePrinter::Num(gsecs / k, 3),
              TablePrinter::Num(dsecs / k, 3)});
  }
  t.Print(std::cout);
  std::cout << "\nexpected shape: the DP reaches a lower diameter than the"
               " greedy local optimum, and matches the greedy diameter at"
               " noticeably lower cost — the paper's case for optimal"
               " insertion being both better and tractable.\n";
  return 0;
}
