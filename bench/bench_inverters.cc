// Extension study (paper Section V bullet: inverters as repeaters).
//
// Compares three repeater libraries on the Table II workload:
//   buffers   — pairs of 1X buffers (the paper's experiments),
//   inverters — pairs of 1X inverters (cheaper, faster, polarity-
//               constrained: every path needs an even inverter count),
//   mixed     — both available.
// Reports the minimum normalized diameter and the cost to match the
// buffer library's optimum.
#include <iostream>

#include "bench_util.h"
#include "core/ard.h"
#include "io/table.h"

int main() {
  using msn::TablePrinter;

  msn::Technology buffers = msn::DefaultTechnology();
  msn::Technology inverters = buffers;
  inverters.repeaters = {
      msn::Repeater::FromInverterPair(msn::DefaultInverter1X())};
  msn::Technology mixed = buffers;
  mixed.repeaters.push_back(inverters.repeaters[0]);

  std::cout << "=== Extension: inverters as repeaters (Section V) ===\n"
            << "(10-pin Table II workload; diameter and cost normalized"
               " to the min-cost solution)\n\n";

  TablePrinter t({"library", "min diam", "cost@min", "cost to match"
                  " buffer optimum"});

  const std::vector<msn::RcTree> nets =
      msn::bench::ExperimentNets(buffers, 10);

  struct Acc {
    double diam = 0.0, cost = 0.0, match = 0.0;
    std::size_t matched = 0;
  };

  // Buffer-library optima first (the matching target).
  std::vector<double> buffer_optimum;
  for (const msn::RcTree& tree : nets) {
    buffer_optimum.push_back(
        msn::RunMsri(tree, buffers).MinArd()->ard_ps);
  }

  const std::pair<const char*, const msn::Technology*> libs[] = {
      {"buffers", &buffers}, {"inverters", &inverters}, {"mixed", &mixed}};
  for (const auto& [name, tech] : libs) {
    Acc acc;
    for (std::size_t i = 0; i < nets.size(); ++i) {
      const msn::RcTree& tree = nets[i];
      const double base = msn::ComputeArd(tree, *tech).ard_ps;
      const double base_cost = 2.0 * 10.0;
      const msn::MsriResult r = msn::RunMsri(tree, *tech);
      acc.diam += r.MinArd()->ard_ps / base;
      acc.cost += r.MinArd()->cost / base_cost;
      if (const msn::TradeoffPoint* p =
              r.MinCostFeasible(buffer_optimum[i])) {
        acc.match += p->cost / base_cost;
        ++acc.matched;
      }
    }
    const double k = static_cast<double>(nets.size());
    t.AddRow({name, TablePrinter::Num(acc.diam / k, 3),
              TablePrinter::Num(acc.cost / k, 2),
              acc.matched == nets.size()
                  ? TablePrinter::Num(acc.match / k, 2)
                  : TablePrinter::Num(
                        acc.match /
                            std::max<double>(1.0,
                                             static_cast<double>(
                                                 acc.matched)),
                        2) + " (" + std::to_string(acc.matched) + "/10)"});
  }
  t.Print(std::cout);
  std::cout << "\nexpected shape: the mixed library weakly dominates"
               " buffers everywhere; inverter pairs reach comparable"
               " diameters at lower cost on even-count paths but lose"
               " flexibility on branchy nets (parity constraint).\n";
  return 0;
}
