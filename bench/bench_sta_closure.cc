// Scaling study for the msn::sta timing-closure loop (docs/STA.md):
// generate multi-net designs of increasing size, run close-timing on
// each, and report wall time, iterations to convergence, DP-vs-cache
// traffic, and the final worst slack.  The per-iteration DP work fans
// out through the runtime batch engine, so wall time should grow close
// to linearly in the number of failing nets while the cache keeps
// re-selected nets from paying the DP twice.
//
// Usage: bench_sta_closure [--max-nets N] [--jobs J] [--max-iters K]
// Defaults sweep 25..200 nets; CI smoke runs use --max-nets 25.
#include <cstddef>
#include <cstdint>
#include <iostream>
#include <string>

#include "bench_util.h"
#include "io/table.h"
#include "netgen/design_gen.h"
#include "sta/closure.h"

namespace {

std::size_t FlagOr(int argc, char** argv, const std::string& flag,
                   std::size_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == flag) {
      return static_cast<std::size_t>(std::strtoull(argv[i + 1], nullptr, 10));
    }
  }
  return fallback;
}

msn::DesignConfig SizedConfig(std::size_t nets) {
  msn::DesignConfig cfg;
  cfg.seed = 1000 + nets;  // Distinct but reproducible per size.
  cfg.num_nets = nets;
  cfg.required_factor = 0.55;  // Most endpoints start failing.
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using msn::TablePrinter;
  const std::size_t max_nets = FlagOr(argc, argv, "--max-nets", 200);
  const std::size_t jobs = FlagOr(argc, argv, "--jobs", 4);
  const std::size_t max_iters = FlagOr(argc, argv, "--max-iters", 12);

  const msn::Technology tech = msn::DefaultTechnology();

  std::cout << "=== Timing-closure scaling: nets per design (jobs=" << jobs
            << ") ===\n\n";

  msn::bench::StatsTrajectory trajectory("bench_sta_closure");
  TablePrinter t({"nets", "endpoints", "iters", "dp runs", "cache hits",
                  "wall (s)", "ms/net", "final slack (ps)"});

  for (std::size_t nets = 25; nets <= max_nets; nets *= 2) {
    const msn::sta::Design design =
        msn::GenerateDesign(SizedConfig(nets), tech);
    msn::sta::ClosureOptions opt;
    opt.jobs = jobs;
    opt.max_iters = max_iters;
    msn::sta::ClosureResult result;
    const double secs = msn::bench::TimeSeconds(
        [&] { result = msn::sta::CloseTiming(design, tech, opt); });

    std::uint64_t dp_runs = 0, cache_hits = 0;
    for (const msn::sta::IterationStats& it : result.iterations) {
      dp_runs += it.dp_runs;
      cache_hits += it.cache_hits;
    }
    for (const msn::sta::NetClosure& net : result.nets) {
      if (!net.error.empty()) {
        std::cerr << "net '" << net.name << "' failed: " << net.error
                  << '\n';
        return 1;
      }
    }

    t.AddRow({std::to_string(nets),
              std::to_string(result.endpoint_slacks.size()),
              std::to_string(result.iterations.size()),
              std::to_string(dp_runs), std::to_string(cache_hits),
              TablePrinter::Num(secs, 4),
              TablePrinter::Num(1e3 * secs / static_cast<double>(nets), 3),
              TablePrinter::Num(result.final_worst_slack_ps, 1)});

    if (trajectory.Enabled()) {
      msn::obs::RunStats run = result.registry;
      run.SetLabel("bench", "bench_sta_closure");
      run.SetValue("wall_s", secs);
      run.SetValue("design.nets", static_cast<double>(nets));
      run.SetValue("design.endpoints",
                   static_cast<double>(result.endpoint_slacks.size()));
      trajectory.Add(run);
    }
  }

  t.Print(std::cout);
  std::cout << "\nexpected shape: wall time ~ linear in failing nets;"
               " cache hits absorb re-selected nets after iteration 1.\n";
  trajectory.Write();
  return 0;
}
