// Workload-shape study: the paper evaluates on uniform random point sets;
// real buses are usually linear spines or a few clustered agents.  This
// bench re-runs the Table II comparison on all three placement shapes to
// check that the conclusions are not an artifact of the uniform workload.
#include <iostream>

#include "bench_util.h"
#include "core/ard.h"
#include "io/table.h"
#include "steiner/one_steiner.h"

namespace {

msn::RcTree Build(const std::vector<msn::Point>& pts,
                  const msn::Technology& tech) {
  const msn::SteinerTree topo = msn::IteratedOneSteiner(pts);
  msn::RcTree tree = msn::RcTree::FromSteinerTree(
      topo, tech.wire,
      std::vector<msn::TerminalParams>(pts.size(),
                                       msn::DefaultTerminal(tech)));
  tree.AddInsertionPoints(800.0);
  return tree;
}

}  // namespace

int main() {
  using msn::TablePrinter;
  const msn::Technology tech = msn::DefaultTechnology();
  constexpr std::size_t kN = 10;
  constexpr std::uint64_t kSeeds = 5;

  std::cout << "=== Workload shapes: uniform vs bus spine vs clustered ===\n"
            << "(10 terminals, 5 seeds; normalized to each net's min-cost"
               " solution)\n\n";

  TablePrinter t({"shape", "wirelen (kum)", "base ARD (ps)", "RI diam",
                  "RI cost", "#rep"});

  struct Shape {
    const char* name;
    std::vector<msn::Point> (*gen)(std::uint64_t, std::size_t,
                                   std::int64_t);
  };
  const Shape shapes[] = {
      {"uniform",
       [](std::uint64_t s, std::size_t n, std::int64_t g) {
         return msn::RandomTerminals(s, n, g);
       }},
      {"bus spine",
       [](std::uint64_t s, std::size_t n, std::int64_t g) {
         return msn::BusLikeTerminals(s, n, g, 500);
       }},
      {"clustered",
       [](std::uint64_t s, std::size_t n, std::int64_t g) {
         return msn::ClusteredTerminals(s, n, g, 3, 800);
       }},
  };

  for (const Shape& shape : shapes) {
    double wirelen = 0.0, base = 0.0, diam = 0.0, cost = 0.0, reps = 0.0;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      const msn::RcTree tree = Build(shape.gen(seed, kN, 10'000), tech);
      wirelen += tree.TotalLengthUm() / 1000.0;
      const double b = msn::ComputeArd(tree, tech).ard_ps;
      base += b;
      const msn::MsriResult r = msn::RunMsri(tree, tech);
      diam += r.MinArd()->ard_ps / b;
      cost += r.MinArd()->cost / (2.0 * kN);
      reps += static_cast<double>(r.MinArd()->num_repeaters);
    }
    const double k = static_cast<double>(kSeeds);
    t.AddRow({shape.name, TablePrinter::Num(wirelen / k, 1),
              TablePrinter::Num(base / k, 0),
              TablePrinter::Num(diam / k, 3),
              TablePrinter::Num(cost / k, 2),
              TablePrinter::Num(reps / k, 1)});
  }
  t.Print(std::cout);
  std::cout << "\nexpected shape: repeater benefit tracks the net's total"
               " RC — uniform placements carry ~2.4x the wirelength of a"
               " 1 cm spine or three clusters and gain the most; the"
               " compact shapes still improve (RI diam < 1) with"
               " proportionally fewer repeaters.  The paper's qualitative"
               " conclusions hold on every shape.\n";
  return 0;
}
