// Ablation of the minimal-functional-subset pruner (paper Section IV-D,
// Fig. 4): run the repeater-insertion DP with pruning disabled, with
// all-pairs (quadratic) pruning, and with the paper's divide-and-conquer,
// and compare run time, peak solution-set size and pairwise comparisons.
//
// Pruning off is exponential in the number of insertion points, so it only
// runs on a deliberately tiny net; the two pruned modes also run on the
// paper-scale 10-pin workload.
#include <iostream>

#include "bench_util.h"
#include "io/table.h"
#include "netgen/netgen.h"

namespace {

msn::RcTree TinyNet(const msn::Technology& tech) {
  msn::NetConfig cfg;
  cfg.seed = 3;
  cfg.num_terminals = 3;
  cfg.grid_um = 4000;
  cfg.insertion_spacing_um = 1200.0;
  return msn::BuildExperimentNet(cfg, tech);
}

const char* ModeName(msn::MfsOptions::Mode m) {
  switch (m) {
    case msn::MfsOptions::Mode::kOff: return "off";
    case msn::MfsOptions::Mode::kQuadratic: return "quadratic";
    case msn::MfsOptions::Mode::kDivideConquer: return "divide&conquer";
  }
  return "?";
}

}  // namespace

int main() {
  using msn::TablePrinter;
  const msn::Technology tech = msn::DefaultTechnology();

  std::cout << "=== MFS pruning ablation (Section IV-D / Fig. 4) ===\n\n";
  TablePrinter t({"net", "pruning", "time (s)", "max set", "comparisons",
                  "pareto pts"});

  const msn::RcTree tiny = TinyNet(tech);
  for (const auto mode :
       {msn::MfsOptions::Mode::kOff, msn::MfsOptions::Mode::kQuadratic,
        msn::MfsOptions::Mode::kDivideConquer}) {
    msn::MsriOptions opt;
    opt.mfs.mode = mode;
    msn::MsriResult result;
    const double secs = msn::bench::TimeSeconds(
        [&] { result = msn::RunMsri(tiny, tech, opt); });
    t.AddRow({"tiny 3-pin", ModeName(mode), TablePrinter::Num(secs, 4),
              std::to_string(result.Stats().max_set_size),
              std::to_string(result.Stats().mfs.comparisons),
              std::to_string(result.Pareto().size())});
  }

  msn::NetConfig cfg;
  cfg.seed = 1;
  cfg.num_terminals = 10;
  const msn::RcTree ten = msn::BuildExperimentNet(cfg, tech);
  for (const auto mode : {msn::MfsOptions::Mode::kQuadratic,
                          msn::MfsOptions::Mode::kDivideConquer}) {
    msn::MsriOptions opt;
    opt.mfs.mode = mode;
    msn::MsriResult result;
    const double secs = msn::bench::TimeSeconds(
        [&] { result = msn::RunMsri(ten, tech, opt); });
    t.AddRow({"10-pin", ModeName(mode), TablePrinter::Num(secs, 4),
              std::to_string(result.Stats().max_set_size),
              std::to_string(result.Stats().mfs.comparisons),
              std::to_string(result.Pareto().size())});
  }
  t.Print(std::cout);
  std::cout << "\nexpected shape: identical Pareto frontiers in all modes;"
               " pruning collapses the solution sets (tractability claim"
               " of Theorem 4.1's implementation).\n";
  return 0;
}
