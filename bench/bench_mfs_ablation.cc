// Ablation of the minimal-functional-subset pruner (paper Section IV-D,
// Fig. 4): run the repeater-insertion DP with pruning disabled, with
// all-pairs (quadratic) pruning, and with the paper's divide-and-conquer,
// and compare run time, peak solution-set size and pairwise comparisons.
//
// Pruning off is exponential in the number of insertion points, so it only
// runs on a deliberately tiny net; the two pruned modes also run on the
// paper-scale 10-pin workload.
#include <iostream>

#include "bench_util.h"
#include "io/table.h"
#include "netgen/netgen.h"

namespace {

msn::RcTree TinyNet(const msn::Technology& tech) {
  msn::NetConfig cfg;
  cfg.seed = 3;
  cfg.num_terminals = 3;
  cfg.grid_um = 4000;
  cfg.insertion_spacing_um = 1200.0;
  return msn::BuildExperimentNet(cfg, tech);
}

const char* ModeName(msn::MfsOptions::Mode m) {
  switch (m) {
    case msn::MfsOptions::Mode::kOff: return "off";
    case msn::MfsOptions::Mode::kQuadratic: return "quadratic";
    case msn::MfsOptions::Mode::kDivideConquer: return "divide&conquer";
  }
  return "?";
}

}  // namespace

int main() {
  using msn::TablePrinter;
  const msn::Technology tech = msn::DefaultTechnology();

  std::cout << "=== MFS pruning ablation (Section IV-D / Fig. 4) ===\n\n";
  TablePrinter t({"net", "pruning", "time (s)", "max set", "comparisons",
                  "pareto pts"});
  msn::bench::StatsTrajectory trajectory("bench_mfs_ablation");

  // One instrumented DP run per (net, pruning mode) row; the sink's own
  // overhead is part of the measured time in every row equally.
  auto run_row = [&](const char* net_name, const msn::RcTree& net,
                     msn::MfsOptions::Mode mode) {
    msn::obs::RunStats run;
    msn::obs::StatsSink sink(&run);
    msn::MsriOptions opt;
    opt.mfs.mode = mode;
    if (trajectory.Enabled()) opt.stats = &sink;
    msn::MsriResult result;
    const double secs = msn::bench::TimeSeconds(
        [&] { result = msn::RunMsri(net, tech, opt); });
    t.AddRow({net_name, ModeName(mode), TablePrinter::Num(secs, 4),
              std::to_string(result.Stats().max_set_size),
              std::to_string(result.Stats().mfs.comparisons),
              std::to_string(result.Pareto().size())});
    if (trajectory.Enabled()) {
      run.SetLabel("bench", "bench_mfs_ablation");
      run.SetLabel("net", net_name);
      run.SetLabel("pruning", ModeName(mode));
      run.SetValue("time_s", secs);
      trajectory.Add(run);
    }
  };

  const msn::RcTree tiny = TinyNet(tech);
  for (const auto mode :
       {msn::MfsOptions::Mode::kOff, msn::MfsOptions::Mode::kQuadratic,
        msn::MfsOptions::Mode::kDivideConquer}) {
    run_row("tiny 3-pin", tiny, mode);
  }

  msn::NetConfig cfg;
  cfg.seed = 1;
  cfg.num_terminals = 10;
  const msn::RcTree ten = msn::BuildExperimentNet(cfg, tech);
  for (const auto mode : {msn::MfsOptions::Mode::kQuadratic,
                          msn::MfsOptions::Mode::kDivideConquer}) {
    run_row("10-pin", ten, mode);
  }
  t.Print(std::cout);
  trajectory.Write();
  std::cout << "\nexpected shape: identical Pareto frontiers in all modes;"
               " pruning collapses the solution sets (tractability claim"
               " of Theorem 4.1's implementation).\n";
  return 0;
}
