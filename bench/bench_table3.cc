// Reproduces paper Table III: the fastest driver-sizing and fastest
// repeater-insertion solutions for six sample topologies (three 10-pin,
// three 20-pin), with diameter in ps and cost in equivalent 1X buffers.
#include <iostream>

#include "bench_util.h"
#include "io/table.h"

int main() {
  using msn::TablePrinter;
  const msn::Technology tech = msn::DefaultTechnology();

  std::cout << "=== Table III: fastest sizing vs fastest repeater"
               " insertion, six sample topologies ===\n\n";

  TablePrinter t({"topology", "|net|", "DS diam (ps)", "DS cost",
                  "RI diam (ps)", "RI cost", "RI #rep"});

  int id = 1;
  for (const std::size_t n : {std::size_t{10}, std::size_t{20}}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      msn::NetConfig cfg;
      cfg.seed = seed;
      cfg.num_terminals = n;
      const msn::RcTree tree = msn::BuildExperimentNet(cfg, tech);

      const msn::MsriResult sized =
          msn::RunMsri(tree, tech, msn::bench::SizingOptions(tech));
      const msn::MsriResult rep = msn::RunMsri(tree, tech);
      const msn::TradeoffPoint* ds = sized.MinArd();
      const msn::TradeoffPoint* ri = rep.MinArd();

      t.AddRow({"T" + std::to_string(id++), std::to_string(n),
                TablePrinter::Num(ds->ard_ps, 1),
                TablePrinter::Num(ds->cost, 0),
                TablePrinter::Num(ri->ard_ps, 1),
                TablePrinter::Num(ri->cost, 0),
                std::to_string(ri->num_repeaters)});
    }
  }
  t.Print(std::cout);
  std::cout << "\npaper's shape: for every topology the repeater-insertion"
               " optimum is faster than the sizing optimum.\n";
  return 0;
}
