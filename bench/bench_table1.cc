// Reproduces paper Table I: the technology parameters used throughout the
// experiments.  The paper takes its values from Okamoto & Cong [20]; our
// substitutions are documented in DESIGN.md §5 (the paper's own text fixes
// the 0.05 pF 1X input capacitance, the 400 Ohm previous-stage resistance
// and the 0.2 pF subsequent-stage capacitance).
#include <iostream>

#include "io/table.h"
#include "tech/tech.h"

int main() {
  using msn::TablePrinter;
  const msn::Technology tech = msn::DefaultTechnology();
  const msn::Buffer buf = msn::DefaultBuffer1X();

  std::cout << "=== Table I: technology parameters ===\n"
            << "(bidirectional repeaters and source/sink drivers are built"
               " from a pair of unidirectional buffers)\n\n";

  TablePrinter t({"parameter", "value", "unit"});
  t.AddRow({"unit wire resistance", TablePrinter::Num(tech.wire.res_per_um, 3),
            "Ohm/um"});
  t.AddRow({"unit wire capacitance",
            TablePrinter::Num(tech.wire.cap_per_um * 1000.0, 3), "fF/um"});
  t.AddRow({"1X buffer intrinsic delay", TablePrinter::Num(buf.intrinsic_ps, 1),
            "ps"});
  t.AddRow({"1X buffer output resistance", TablePrinter::Num(buf.output_res, 0),
            "Ohm"});
  t.AddRow({"1X buffer input capacitance", TablePrinter::Num(buf.input_cap, 3),
            "pF"});
  t.AddRow({"1X buffer cost", TablePrinter::Num(buf.cost, 0), "1X units"});
  t.AddRow({"previous-stage resistance", TablePrinter::Num(tech.prev_stage_res, 0),
            "Ohm"});
  t.AddRow({"subsequent-stage capacitance",
            TablePrinter::Num(tech.next_stage_cap, 2), "pF"});
  t.Print(std::cout);

  std::cout << "\nderived repeater (pair of 1X buffers):\n";
  TablePrinter r({"parameter", "A->B", "B->A"});
  const msn::Repeater& rep = tech.repeaters[0];
  r.AddRow({"intrinsic delay (ps)", TablePrinter::Num(rep.intrinsic_ab, 1),
            TablePrinter::Num(rep.intrinsic_ba, 1)});
  r.AddRow({"output resistance (Ohm)", TablePrinter::Num(rep.res_ab, 0),
            TablePrinter::Num(rep.res_ba, 0)});
  r.AddRow({"input cap (pF, A / B side)", TablePrinter::Num(rep.cap_a, 3),
            TablePrinter::Num(rep.cap_b, 3)});
  r.AddRow({"cost (1X units)", TablePrinter::Num(rep.cost, 0), ""});
  r.Print(std::cout);
  return 0;
}
