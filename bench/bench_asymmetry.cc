// Future-work study (paper Section VII: "the effects of asymmetric
// source/sink distributions are also of interest").
//
// On the 10-pin workload we sweep how many terminals can drive: from a
// single source (the classic van Ginneken regime) to all ten (the
// symmetric bus of Table II).  Remaining terminals are sinks only.
// Reported per sweep point: the optimized diameter (normalized to that
// configuration's own unbuffered diameter), the repeater count, and how
// many of the placed repeaters sit in their asymmetric "fast direction"
// when the library is direction-skewed.
#include <iostream>

#include "bench_util.h"
#include "core/ard.h"
#include "io/table.h"

namespace {

/// Direction-skewed repeater: fast A->B, slow B->A.  With few sources
/// the optimizer should orient nearly all repeaters fast-side-downstream;
/// with many sources the orientations must compromise.
msn::Technology SkewedTech() {
  msn::Technology tech = msn::DefaultTechnology();
  msn::Repeater r = msn::Repeater::FromBufferPair(msn::DefaultBuffer1X());
  r.name = "skewed";
  r.intrinsic_ab = 25.0;
  r.res_ab = 140.0;
  r.intrinsic_ba = 50.0;
  r.res_ba = 240.0;
  tech.repeaters = {r};
  return tech;
}

}  // namespace

int main() {
  using msn::TablePrinter;
  const msn::Technology tech = SkewedTech();

  std::cout << "=== Section VII: asymmetric source/sink distributions ===\n"
            << "(10-pin nets, 5 seeds; terminals 0..k-1 drive, the rest"
               " only receive; direction-skewed repeater library)\n\n";

  TablePrinter t({"#sources", "opt diam", "#rep", "fast-oriented",
                  "DP s/net"});

  for (const std::size_t k : {std::size_t{1}, std::size_t{2},
                              std::size_t{5}, std::size_t{10}}) {
    double diam = 0.0, reps = 0.0, fast = 0.0, secs = 0.0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      msn::NetConfig cfg;
      cfg.seed = seed;
      cfg.num_terminals = 10;
      msn::RcTree tree = msn::BuildExperimentNet(cfg, tech);
      for (std::size_t u = 0; u < 10; ++u) {
        if (u >= k) tree.MutableTerminal(u).is_source = false;
      }

      const double base = msn::ComputeArd(tree, tech).ard_ps;
      msn::MsriResult r;
      secs += msn::bench::TimeSeconds(
          [&] { r = msn::RunMsri(tree, tech); });
      const msn::TradeoffPoint* best = r.MinArd();
      diam += best->ard_ps / base;
      reps += static_cast<double>(best->num_repeaters);

      // Count repeaters whose fast direction (A->B) points away from the
      // nearest source, approximated by the downstream side: with one
      // source rooted at terminal 0 the DP's "down" is source-away.
      for (msn::NodeId v = 0; v < tree.NumNodes(); ++v) {
        if (!best->repeaters.Has(v)) continue;
        // The A side faces a_side_neighbor; fast direction A->B drives
        // the *other* neighbor.  Count it as "fast-oriented" if the
        // signal from source terminal 0 crosses it A->B, i.e. the A side
        // faces toward terminal 0's side of the tree.
        const msn::SourceDelays d = msn::ComputeSourceDelays(
            tree, 0, best->repeaters, best->drivers, tech);
        const msn::NodeId a_side = best->repeaters.At(v)->a_side_neighbor;
        if (d.arrival[a_side] <= d.arrival[v]) fast += 1.0;
        break;  // Sampling one repeater per net keeps this cheap.
      }
    }
    t.AddRow({std::to_string(k), TablePrinter::Num(diam / 5.0, 3),
              TablePrinter::Num(reps / 5.0, 1),
              TablePrinter::Num(fast / 5.0, 2),
              TablePrinter::Num(secs / 5.0, 3)});
  }
  t.Print(std::cout);
  std::cout << "\nexpected shape: fewer sources -> deeper optimized"
               " diameters (fewer pair constraints to balance) and"
               " repeaters consistently oriented fast-side downstream;"
               " the symmetric bus forces orientation compromises.\n";
  return 0;
}
