// Delay-model sensitivity: the ARD under Elmore, the two-moment D2M
// metric, and the golden transient simulation.
//
// The paper (Section III, closing remark) emphasizes that the ARD is
// well-defined under any delay measure.  This bench quantifies how much
// the measure matters on the Table II workload, and — more interesting —
// whether the *optimizer's decisions* transfer: we optimize under Elmore
// and re-score the chosen solutions under D2M and under the simulator.
#include <iostream>

#include "bench_util.h"
#include "core/ard.h"
#include "elmore/moments.h"
#include "sim/transient.h"
#include "io/table.h"

int main() {
  using msn::TablePrinter;
  const msn::Technology tech = msn::DefaultTechnology();

  std::cout << "=== Delay-model sensitivity: Elmore vs D2M ===\n"
            << "(Table II workload; the DP optimizes under Elmore, both"
               " metrics re-score)\n\n";

  TablePrinter t({"|net|", "base Elmore", "base D2M", "base golden",
                  "opt Elmore", "opt D2M", "opt golden",
                  "golden improvement"});

  for (const std::size_t n : {std::size_t{10}, std::size_t{20}}) {
    const std::vector<msn::RcTree> nets = msn::bench::ExperimentNets(tech, n);
    double be = 0.0, bd = 0.0, bg = 0.0, oe = 0.0, od = 0.0, og = 0.0;
    for (const msn::RcTree& tree : nets) {
      const msn::RepeaterAssignment none(tree.NumNodes());
      const msn::DriverAssignment drivers(tree.NumTerminals());
      be += msn::ComputeArd(tree, none, drivers, tech).ard_ps;
      bd += msn::ComputeArdD2M(tree, none, drivers, tech).ard_ps;
      bg += msn::ComputeArdGolden(tree, none, drivers, tech).ard_ps;

      const msn::MsriResult r = msn::RunMsri(tree, tech);
      const msn::TradeoffPoint* best = r.MinArd();
      oe += best->ard_ps;
      od += msn::ComputeArdD2M(tree, best->repeaters, best->drivers, tech)
                .ard_ps;
      og += msn::ComputeArdGolden(tree, best->repeaters, best->drivers,
                                  tech)
                .ard_ps;
    }
    const double k = static_cast<double>(nets.size());
    t.AddRow({std::to_string(n), TablePrinter::Num(be / k, 0),
              TablePrinter::Num(bd / k, 0), TablePrinter::Num(bg / k, 0),
              TablePrinter::Num(oe / k, 0), TablePrinter::Num(od / k, 0),
              TablePrinter::Num(og / k, 0),
              TablePrinter::Num(1.0 - (og / k) / (bg / k), 2)});
  }
  t.Print(std::cout);
  std::cout << "\nexpected shape: golden <= D2M-ish <= Elmore (Elmore is"
               " a provable upper bound, D2M corrects most of its"
               " pessimism), and the Elmore-optimized repeater placements"
               " deliver comparable relative improvement when re-scored"
               " under the simulator — the paper's choice of Elmore for"
               " optimization is robust.\n";
  return 0;
}
