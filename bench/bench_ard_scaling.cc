// Exercises the paper's Section III claim: ARD(T) under Elmore is
// computable in O(n) — no harder than a single-source RC radius — whereas
// the obvious method runs one single-source pass per source, O(k*n).
//
// We sweep the terminal count (all terminals are sources and sinks, so
// k = n) and time both engines on MST-based topologies with insertion
// points; the naive/linear time ratio should grow linearly in n.
#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "bench_util.h"
#include "core/ard.h"
#include "elmore/delay.h"
#include "io/table.h"
#include "netgen/netgen.h"
#include "steiner/spanning.h"

namespace {

const msn::Technology& Tech() {
  static const msn::Technology tech = msn::DefaultTechnology();
  return tech;
}

/// MST topology (1-Steiner is too slow at thousands of terminals and the
/// engines don't care about Steiner quality here).
msn::RcTree BigNet(std::size_t n) {
  const std::vector<msn::Point> pts = msn::RandomTerminals(7, n, 10'000);
  const msn::SteinerTree topo = msn::RectilinearMst(pts);
  const std::vector<msn::TerminalParams> params(
      n, msn::DefaultTerminal(Tech()));
  msn::RcTree tree = msn::RcTree::FromSteinerTree(topo, Tech().wire, params);
  tree.AddInsertionPoints(800.0, /*at_least_one_per_wire=*/false);
  return tree;
}

std::map<std::size_t, std::pair<double, double>> g_seconds;  // n -> (lin, naive).

void BM_LinearArd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const msn::RcTree tree = BigNet(n);
  const msn::RepeaterAssignment none(tree.NumNodes());
  const msn::DriverAssignment drivers(tree.NumTerminals());
  double ard = 0.0;
  for (auto _ : state) {
    ard = msn::ComputeArd(tree, none, drivers, Tech()).ard_ps;
    benchmark::DoNotOptimize(ard);
  }
  g_seconds[n].first = msn::bench::TimeSeconds([&] {
    benchmark::DoNotOptimize(
        msn::ComputeArd(tree, none, drivers, Tech()).ard_ps);
  });
}

void BM_NaiveArd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const msn::RcTree tree = BigNet(n);
  const msn::RepeaterAssignment none(tree.NumNodes());
  const msn::DriverAssignment drivers(tree.NumTerminals());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        msn::NaiveArd(tree, none, drivers, Tech()).ard_ps);
  }
  g_seconds[n].second = msn::bench::TimeSeconds([&] {
    benchmark::DoNotOptimize(
        msn::NaiveArd(tree, none, drivers, Tech()).ard_ps);
  });
}

BENCHMARK(BM_LinearArd)->Arg(10)->Arg(50)->Arg(200)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_NaiveArd)->Arg(10)->Arg(50)->Arg(200)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Section III claim: linear-time ARD vs k single-source"
               " passes ===\n\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  msn::TablePrinter t({"terminals", "linear (s)", "naive k-pass (s)",
                       "speedup"});
  msn::bench::StatsTrajectory trajectory("bench_ard_scaling");
  for (const auto& [n, secs] : g_seconds) {
    t.AddRow({std::to_string(n), msn::TablePrinter::Num(secs.first, 6),
              msn::TablePrinter::Num(secs.second, 6),
              msn::TablePrinter::Num(secs.second /
                                         std::max(secs.first, 1e-9),
                                     1)});
    if (trajectory.Enabled()) {
      // One instrumented pass per cardinality: the three ARD pass timers
      // plus the measured throughput numbers above.
      msn::obs::RunStats run;
      msn::obs::StatsSink sink(&run);
      const msn::RcTree tree = BigNet(n);
      const msn::RepeaterAssignment none(tree.NumNodes());
      const msn::DriverAssignment drivers(tree.NumTerminals());
      msn::ComputeArd(tree, none, drivers, Tech(), msn::kNoNode, &sink);
      run.SetLabel("bench", "bench_ard_scaling");
      run.SetValue("net.terminals", static_cast<double>(n));
      run.SetValue("linear_s", secs.first);
      run.SetValue("naive_s", secs.second);
      run.SetValue("speedup", secs.second / std::max(secs.first, 1e-9));
      trajectory.Add(run);
    }
  }
  std::cout << '\n';
  t.Print(std::cout);
  std::cout << "\nexpected shape: the speedup grows roughly linearly with"
               " the terminal count (k = n sources).\n";
  trajectory.Write();
  return 0;
}
