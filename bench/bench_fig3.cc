// Reproduces paper Fig. 3: the worked example motivating the PWL
// characterization.
//
// Two sources u and w feed a vertex v; the bottom-up accumulated
// resistances are 7 (from u) and 12 (from w), so the arrival times at v
// are linear functions of the external capacitance c_E with slopes 7 and
// 12.  Their piecewise max switches the *critical source* at the crossing
// — the observation that forces solutions to carry whole PWL functions
// rather than scalars.  Adding each side's scalar sink delay to the other
// side's arrival line gives the internal augmented-diameter curves of
// Fig. 3(d).
#include <iostream>

#include "core/pwl.h"

namespace {

void Dump(const char* name, const msn::Pwl& f) {
  std::cout << "  " << name << " = " << f << '\n';
}

void Sample(const msn::Pwl& f, const char* name) {
  std::cout << "  " << name << "(c_E):";
  for (double x : {0.0, 2.0, 4.0, 6.0, 8.0, 10.0}) {
    std::cout << "  " << x << "->" << f.Eval(x);
  }
  std::cout << '\n';
}

}  // namespace

int main() {
  using msn::Pwl;
  std::cout << "=== Fig. 3: arrival-time and internal-diameter PWLs ===\n\n";

  // (c) arrival-time functions at v.  Intercepts chosen so the lines
  // cross inside the plotted range (the paper's u-line is steeper: the
  // nearer source accumulates more driver resistance).
  const Pwl at_u = Pwl::Line(100.0, 12.0);
  const Pwl at_w = Pwl::Line(130.0, 7.0);
  const Pwl arrival = Pwl::Max(at_u, at_w);

  std::cout << "(c) arrival time at v as a function of external cap c_E:\n";
  Dump("at_v^u", at_u);
  Dump("at_v^w", at_w);
  Dump("max   ", arrival);
  Sample(arrival, "arr");
  const double cross = (130.0 - 100.0) / (12.0 - 7.0);
  std::cout << "  critical source swaps from w to u at c_E = " << cross
            << " (paper: the PWL max captures exactly this)\n\n";

  // (d) internal augmented path delays: each source's arrival line at v
  // plus the scalar delay from v down to the other side's sink.
  const double delay_to_sink_y = 40.0;  // v -> y (on w's side).
  const double delay_to_sink_x = 65.0;  // v -> x (on u's side).
  Pwl d_u_to_y = at_u;
  d_u_to_y.AddScalar(delay_to_sink_y);
  Pwl d_w_to_x = at_w;
  d_w_to_x.AddScalar(delay_to_sink_x);
  const Pwl diam = Pwl::Max(d_u_to_y, d_w_to_x);

  std::cout << "(d) internal augmented RC-diameter of the subtree:\n";
  Dump("D(u->y)", d_u_to_y);
  Dump("D(w->x)", d_w_to_x);
  Dump("max    ", diam);
  Sample(diam, "diam");
  std::cout << "\nboth curves are convex nondecreasing PWLs: "
            << std::boolalpha << arrival.IsConvexNonDecreasing() << " / "
            << diam.IsConvexNonDecreasing() << '\n';
  return 0;
}
