// Reproduces paper Fig. 11: optimization of an 8-pin net (~19.6 kum of
// wire) where every pin may drive or receive.
//
//   (a) the unoptimized topology,
//   (b) a two-repeater solution,
//   (c) a five-repeater solution,
// each with its RC-diameter and critical source/sink pair, showing how
// performance improves with added buffering resources and how the critical
// input-to-output path moves as the algorithm balances all paths.
#include <iostream>

#include "core/ard.h"
#include "core/msri.h"
#include "elmore/delay.h"
#include "io/report.h"
#include "io/table.h"
#include "netgen/netgen.h"

namespace {

/// The cheapest Pareto point using at most `max_repeaters` repeaters.
const msn::TradeoffPoint* BestWithBudget(const msn::MsriResult& result,
                                         std::size_t max_repeaters) {
  const msn::TradeoffPoint* best = nullptr;
  for (const msn::TradeoffPoint& p : result.Pareto()) {
    if (p.num_repeaters > max_repeaters) continue;
    if (best == nullptr || p.ard_ps < best->ard_ps) best = &p;
  }
  return best;
}

void Show(const char* title, const msn::RcTree& tree,
          const msn::Technology& tech, const msn::TradeoffPoint& p) {
  std::cout << title << '\n';
  const msn::ArdResult ard =
      msn::ComputeArd(tree, p.repeaters, p.drivers, tech);
  msn::DescribeSolution(std::cout, tree, tech, p, ard);
  const msn::CriticalPath path =
      msn::TraceCriticalPath(tree, ard, p.repeaters, p.drivers, tech);
  std::cout << "  critical path arrivals (ps):";
  for (std::size_t i = 0; i < path.nodes.size(); ++i) {
    if (i % 4 == 0) std::cout << "\n   ";
    std::cout << " n" << path.nodes[i] << '@'
              << msn::TablePrinter::Num(path.arrival_ps[i], 0);
  }
  std::cout << "\n\n" << msn::RenderAscii(tree, p.repeaters, 64, 24)
            << '\n';
}

}  // namespace

int main() {
  const msn::Technology tech = msn::DefaultTechnology();
  const msn::RcTree tree = msn::BuildFig11Net(tech);

  std::cout << "=== Fig. 11: optimization of an 8-pin net ===\n";
  msn::DescribeNet(std::cout, tree);
  std::cout << '\n';

  const msn::MsriResult result = msn::RunMsri(tree, tech);

  const msn::TradeoffPoint* unopt = BestWithBudget(result, 0);
  const msn::TradeoffPoint* two = BestWithBudget(result, 2);
  const msn::TradeoffPoint* five = BestWithBudget(result, 5);

  Show("--- (a) unoptimized topology ---", tree, tech, *unopt);
  Show("--- (b) best solution with at most 2 repeaters ---", tree, tech,
       *two);
  Show("--- (c) best solution with at most 5 repeaters ---", tree, tech,
       *five);

  std::cout << "full cost/ARD tradeoff suite:\n";
  for (const msn::TradeoffPoint& p : result.Pareto()) {
    std::cout << "  cost " << p.cost << "  repeaters " << p.num_repeaters
              << "  ARD " << p.ard_ps << " ps\n";
  }
  std::cout << "\npaper's shape: diameter drops from (a) to (b) to (c),"
               " and the critical source/sink pair changes as buffering"
               " re-balances the paths.\n";
  return 0;
}
