// Extension study (paper conclusions: wire sizing within the same DP).
//
// Compares repeaters-only, wire-sizing-only (widths 1x/2x) and the joint
// optimization on 6-pin nets, in TWO technology regimes:
//
//   capacitive — the Table-I default (0.04 Ohm/um, 0.118 fF/um).  Here
//       widening never pays: the wire's Elmore self-delay R·C/2 is
//       width-invariant, and the driver-loading penalty R_drv·C·w beats
//       the downstream saving R·C_load/w with 180-Ohm drivers.
//   resistive  — 0.2 Ohm/um, 0.03 fF/um (e.g. a minimum-pitch lower
//       metal).  Now the wire's resistance dominates and widening is a
//       real lever, exactly as the wire-sizing literature ([15],[20],[22])
//       assumes.
//
// Per-segment widths square the DP state space (the paper's
// pseudopolynomial caveat), so these runs use MfsOptions::Approximate()
// pruning (bounded few-percent slack) and 2000 um candidate spacing.
#include <iostream>

#include "bench_util.h"
#include "core/ard.h"
#include "io/table.h"

namespace {

msn::MsriOptions Wires(bool repeaters) {
  msn::MsriOptions opt;
  opt.insert_repeaters = repeaters;
  opt.size_wires = true;
  opt.wire_width_choices = {1.0, 2.0};
  opt.wire_area_cost_per_um = 0.0005;
  opt.mfs = msn::MfsOptions::Approximate();
  return opt;
}

void RunRegime(const char* name, const msn::Technology& tech) {
  using msn::TablePrinter;
  std::cout << "--- " << name << " wire regime (r = "
            << tech.wire.res_per_um << " Ohm/um, c = "
            << tech.wire.cap_per_um * 1000.0 << " fF/um) ---\n";
  TablePrinter t({"mode", "min diam", "cost@min", "widened segs"});

  const std::vector<msn::RcTree> nets =
      msn::bench::ExperimentNets(tech, 6, 5, 2000.0);
  struct Mode {
    const char* label;
    msn::MsriOptions opt;
  };
  const Mode modes[] = {
      {"repeaters only", msn::MsriOptions{}},
      {"wire sizing only", Wires(false)},
      {"joint", Wires(true)},
  };
  for (const Mode& mode : modes) {
    double diam = 0.0, cost = 0.0, widened = 0.0;
    for (const msn::RcTree& tree : nets) {
      const double base = msn::ComputeArd(tree, tech).ard_ps;
      const msn::MsriResult r = msn::RunMsri(tree, tech, mode.opt);
      diam += r.MinArd()->ard_ps / base;
      cost += r.MinArd()->cost / 12.0;
      for (const double w : r.MinArd()->wire_widths) {
        if (w > 1.0) widened += 1.0;
      }
    }
    const double k = static_cast<double>(nets.size());
    t.AddRow({mode.label, TablePrinter::Num(diam / k, 3),
              TablePrinter::Num(cost / k, 2),
              TablePrinter::Num(widened / k, 1)});
  }
  t.Print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  std::cout << "=== Extension: simultaneous wire sizing ===\n"
            << "(6-pin nets, 2000 um insertion spacing, widths 1x/2x at"
               " 0.0005 cost/um of extra width, approximate pruning)\n\n";

  RunRegime("capacitive", msn::DefaultTechnology());

  msn::Technology resistive = msn::DefaultTechnology();
  resistive.wire = msn::WireParams{.res_per_um = 0.2,
                                   .cap_per_um = 0.00003};
  RunRegime("resistive", resistive);

  std::cout << "expected shape: in the capacitive regime widening never"
               " pays (wire self-delay is width-invariant and drivers are"
               " weak); in the resistive regime wire sizing becomes a real"
               " lever and the joint mode dominates both single"
               " techniques.\n";
  return 0;
}
