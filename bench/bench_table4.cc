// Reproduces paper Table IV: average CPU seconds of the repeater-insertion
// and driver-sizing runs on the Table II workload.  (The paper reports a
// Sun SPARC 10; we report this machine — only the tractability claim and
// the 10-to-20-pin scaling carry over.)
//
// Registered through google-benchmark so timing methodology (warm-up,
// repetition) is standardized; a summary table in the paper's format is
// printed at exit.
#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "bench_util.h"
#include "io/table.h"

namespace {

const msn::Technology& Tech() {
  static const msn::Technology tech = msn::DefaultTechnology();
  return tech;
}

const std::vector<msn::RcTree>& Nets(std::size_t n) {
  static std::map<std::size_t, std::vector<msn::RcTree>> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache.emplace(n, msn::bench::ExperimentNets(Tech(), n)).first;
  }
  return it->second;
}

/// Mean seconds per net, recorded for the summary table.
std::map<std::pair<std::size_t, bool>, double> g_mean_seconds;

void RunSuite(benchmark::State& state, bool sizing) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<msn::RcTree>& nets = Nets(n);
  double seconds = 0.0;
  std::size_t runs = 0;
  for (auto _ : state) {
    for (const msn::RcTree& tree : nets) {
      const double s = msn::bench::TimeSeconds([&] {
        const msn::MsriResult r =
            sizing ? msn::RunMsri(tree, Tech(),
                                  msn::bench::SizingOptions(Tech()))
                   : msn::RunMsri(tree, Tech());
        benchmark::DoNotOptimize(r.Pareto().size());
      });
      seconds += s;
      ++runs;
    }
  }
  state.counters["sec/net"] = seconds / static_cast<double>(runs);
  g_mean_seconds[{n, sizing}] = seconds / static_cast<double>(runs);
}

void BM_RepeaterInsertion(benchmark::State& state) {
  RunSuite(state, /*sizing=*/false);
}
void BM_DriverSizing(benchmark::State& state) {
  RunSuite(state, /*sizing=*/true);
}

BENCHMARK(BM_RepeaterInsertion)
    ->Arg(10)
    ->Arg(20)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_DriverSizing)
    ->Arg(10)
    ->Arg(20)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Table IV: average run time (seconds per net) ===\n\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  msn::TablePrinter t({"|net|", "repeater insertion (s)",
                       "driver sizing (s)"});
  for (const std::size_t n : {std::size_t{10}, std::size_t{20}}) {
    t.AddRow({std::to_string(n),
              msn::TablePrinter::Num(g_mean_seconds[{n, false}], 3),
              msn::TablePrinter::Num(g_mean_seconds[{n, true}], 3)});
  }
  std::cout << '\n';
  t.Print(std::cout);
  std::cout << "\npaper's shape: both modes complete in seconds per net;"
               " run time grows modestly from 10 to 20 pins.\n";
  return 0;
}
