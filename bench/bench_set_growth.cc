// Pseudopolynomial behaviour study (paper Section V, first bullet, and
// footnote 13: PWLs and solution sets can in principle grow exponentially
// in the number of insertion points, but "such degenerate scenarios
// appear to occur infrequently in practice").
//
// On a two-pin line with an increasing number of insertion points we
// track the peak solution-set size, the largest PWL, and the run time —
// with exact pruning, with approximate pruning, and with pruning off
// (which *is* exponential and stops early).
#include <iostream>

#include "bench_util.h"
#include "io/table.h"
#include "tech/tech.h"

namespace {

msn::RcTree Line(const msn::Technology& tech, std::size_t ips) {
  msn::RcTree tree(tech.wire);
  const msn::TerminalParams pin = msn::DefaultTerminal(tech);
  const double length = 16'000.0;
  const msn::NodeId a = tree.AddTerminal(pin, {0, 0});
  const msn::NodeId b = tree.AddTerminal(
      pin, {static_cast<std::int64_t>(length), 0});
  msn::NodeId prev = a;
  const double piece = length / static_cast<double>(ips + 1);
  for (std::size_t k = 1; k <= ips; ++k) {
    const msn::NodeId ip = tree.AddNode(
        msn::NodeKind::kInsertion,
        {static_cast<std::int64_t>(piece * static_cast<double>(k)), 0});
    tree.AddEdge(prev, ip, piece);
    prev = ip;
  }
  tree.AddEdge(prev, b, piece);
  return tree;
}

}  // namespace

int main() {
  using msn::TablePrinter;
  const msn::Technology tech = msn::DefaultTechnology();

  std::cout << "=== Solution-set growth vs insertion points ===\n"
            << "(two-pin 16 mm line; exact MFS, approximate MFS, and"
               " pruning disabled)\n\n";

  TablePrinter t({"#ip", "exact max set", "exact s", "approx max set",
                  "approx s", "off max set", "off s"});

  for (const std::size_t ips : {2u, 6u, 10u, 14u, 18u}) {
    const msn::RcTree tree = Line(tech, ips);
    std::vector<std::string> row{std::to_string(ips)};

    for (const int mode : {0, 1, 2}) {
      msn::MsriOptions opt;
      if (mode == 1) opt.mfs = msn::MfsOptions::Approximate();
      if (mode == 2) opt.mfs.mode = msn::MfsOptions::Mode::kOff;
      if (mode == 2 && ips > 14) {
        row.push_back("-");
        row.push_back("-");
        continue;  // 3^18 unbuffered/oriented states: hopeless.
      }
      msn::MsriResult r;
      const double secs = msn::bench::TimeSeconds(
          [&] { r = msn::RunMsri(tree, tech, opt); });
      row.push_back(std::to_string(r.Stats().max_set_size));
      row.push_back(TablePrinter::Num(secs, 3));
    }
    t.AddRow(std::move(row));
  }
  t.Print(std::cout);
  std::cout << "\nexpected shape: exact MFS keeps sets polynomially small"
               " (the paper's empirical tractability claim); disabling"
               " pruning grows exponentially in the insertion-point"
               " count.\n";
  return 0;
}
