// Reproduces paper footnote 15: denser insertion-point spacing (down to
// 300 um) buys only a small diameter improvement over the 800 um default
// while costing noticeably more run time.
#include <iostream>

#include "bench_util.h"
#include "core/ard.h"
#include "io/table.h"

int main() {
  using msn::TablePrinter;
  const msn::Technology tech = msn::DefaultTechnology();

  std::cout << "=== Footnote 15: insertion-point spacing sweep ===\n"
            << "(10-pin nets, diameters normalized to the min-cost"
               " solution, averages over 5 seeds)\n\n";

  TablePrinter t({"spacing (um)", "avg #ip", "RI diam", "RI cost",
                  "time (s)"});

  for (const double spacing : {800.0, 450.0, 300.0}) {
    const std::vector<msn::RcTree> nets =
        msn::bench::ExperimentNets(tech, 10, 5, spacing);
    double sum_ip = 0.0, diam = 0.0, cost = 0.0, secs = 0.0;
    for (const msn::RcTree& tree : nets) {
      sum_ip += static_cast<double>(tree.InsertionPoints().size());
      const double base = msn::ComputeArd(tree, tech).ard_ps;
      msn::MsriResult result;
      secs += msn::bench::TimeSeconds(
          [&] { result = msn::RunMsri(tree, tech); });
      diam += result.MinArd()->ard_ps / base;
      cost += result.MinArd()->cost / (2.0 * 10.0);
    }
    const double k = static_cast<double>(nets.size());
    t.AddRow({TablePrinter::Num(spacing, 0), TablePrinter::Num(sum_ip / k, 1),
              TablePrinter::Num(diam / k, 3), TablePrinter::Num(cost / k, 2),
              TablePrinter::Num(secs / k, 3)});
  }
  t.Print(std::cout);
  std::cout << "\nexpected shape: tighter spacing improves the minimal"
               " diameter only marginally but increases run time"
               " (the paper kept 800 um for this reason).\n";
  return 0;
}
