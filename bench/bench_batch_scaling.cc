// Thread-scaling study for the msn::runtime batch engine
// (docs/RUNTIME.md): optimize a batch of independent nets at 1/2/4/8
// worker threads and report wall time, speedup, and parallel efficiency.
// Per-net DP work is embarrassingly parallel, so on an N-core machine the
// speedup should track min(jobs, N) until the slowest single net
// dominates (the batch's critical path).
//
// Every configuration's report is byte-compared against the jobs=1 run —
// the determinism contract — so this bench doubles as a stress check.
//
// Usage: bench_batch_scaling [--nets N] [--terminals T] [--max-jobs J]
// Defaults (32 nets x 8 terminals) exercise the acceptance workload; CI
// smoke runs use a tiny batch (e.g. --nets 6 --terminals 4).
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "io/table.h"
#include "runtime/batch.h"

namespace {

std::size_t FlagOr(int argc, char** argv, const std::string& flag,
                   std::size_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == flag) {
      return static_cast<std::size_t>(std::strtoull(argv[i + 1], nullptr, 10));
    }
  }
  return fallback;
}

std::vector<msn::runtime::BatchJob> MakeJobs(const msn::Technology& tech,
                                             std::size_t nets,
                                             std::size_t terminals) {
  std::vector<msn::runtime::BatchJob> jobs;
  jobs.reserve(nets);
  for (std::uint64_t seed = 1; seed <= nets; ++seed) {
    msn::NetConfig cfg;
    cfg.seed = seed;
    cfg.num_terminals = terminals;
    jobs.push_back(msn::runtime::BatchJob{
        "net" + std::to_string(seed), msn::BuildExperimentNet(cfg, tech),
        msn::MsriOptions{}});
  }
  return jobs;
}

std::string Render(const msn::runtime::BatchResult& batch) {
  std::ostringstream os;
  msn::runtime::WriteBatchReport(os, batch);
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using msn::TablePrinter;
  const std::size_t nets = FlagOr(argc, argv, "--nets", 32);
  const std::size_t terminals = FlagOr(argc, argv, "--terminals", 8);
  const std::size_t max_jobs = FlagOr(argc, argv, "--max-jobs", 8);

  const msn::Technology tech = msn::DefaultTechnology();
  const std::vector<msn::runtime::BatchJob> jobs =
      MakeJobs(tech, nets, terminals);

  std::cout << "=== Batch engine thread scaling: " << nets << " nets x "
            << terminals << " terminals ===\n\n";

  msn::bench::StatsTrajectory trajectory("bench_batch_scaling");
  TablePrinter t({"jobs", "wall (s)", "speedup", "efficiency"});

  double base_s = 0.0;
  std::string base_report;
  bool deterministic = true;
  for (std::size_t j = 1; j <= max_jobs; j *= 2) {
    msn::runtime::BatchOptions opt;
    opt.jobs = j;
    opt.collect_stats = trajectory.Enabled();
    msn::runtime::BatchResult batch;
    const double secs = msn::bench::TimeSeconds(
        [&] { batch = msn::runtime::OptimizeBatch(jobs, tech, opt); });
    if (!batch.AllOk()) {
      std::cerr << "batch run failed at jobs=" << j << '\n';
      return 1;
    }
    if (j == 1) {
      base_s = secs;
      base_report = Render(batch);
    } else if (Render(batch) != base_report) {
      deterministic = false;
    }
    const double speedup = base_s / std::max(secs, 1e-9);
    t.AddRow({std::to_string(j), TablePrinter::Num(secs, 4),
              TablePrinter::Num(speedup, 2),
              TablePrinter::Num(speedup / static_cast<double>(j), 2)});
    if (trajectory.Enabled()) {
      msn::obs::RunStats run = batch.aggregate;
      run.SetLabel("bench", "bench_batch_scaling");
      run.SetValue("wall_s", secs);
      run.SetValue("speedup", speedup);
      trajectory.Add(run);
    }
  }

  t.Print(std::cout);
  std::cout << "\nreport determinism across thread counts: "
            << (deterministic ? "ok (byte-identical)" : "VIOLATED") << '\n'
            << "expected shape: speedup ~ min(jobs, cores) until the"
               " slowest net dominates.\n";
  trajectory.Write();
  return deterministic ? 0 : 1;
}
