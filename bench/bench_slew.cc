// Extension study: the price of slew control.
//
// Sweeping the maximum unbuffered stage length (the practical proxy for a
// transition-time limit) on the 10-pin workload: tighter bounds force
// repeaters into even the cheapest feasible solution, raising the cost
// floor while barely moving the achievable minimum diameter (the
// min-diameter solution already buffers densely).
#include <iostream>

#include "bench_util.h"
#include "core/ard.h"
#include "elmore/moments.h"
#include "io/table.h"

int main() {
  using msn::TablePrinter;
  const msn::Technology tech = msn::DefaultTechnology();

  std::cout << "=== Extension: slew control via bounded stage length ===\n"
            << "(10-pin Table II workload; cost normalized to the"
               " unconstrained min-cost solution)\n\n";

  TablePrinter t({"stage bound (um)", "min-cost", "min-cost #rep",
                  "min diam", "worst stage slew (ps)"});

  const std::vector<msn::RcTree> nets = msn::bench::ExperimentNets(tech, 10);
  for (const double bound : {0.0, 4000.0, 2500.0, 1500.0}) {
    double cost = 0.0, reps = 0.0, diam = 0.0, slew = 0.0;
    std::size_t feasible = 0;
    for (const msn::RcTree& tree : nets) {
      msn::MsriOptions opt;
      opt.max_stage_length_um = bound;
      const msn::MsriResult r = msn::RunMsri(tree, tech, opt);
      if (r.Pareto().empty()) continue;
      ++feasible;
      const double base = msn::ComputeArd(tree, tech).ard_ps;
      cost += r.MinCost()->cost / 20.0;
      reps += static_cast<double>(r.MinCost()->num_repeaters);
      diam += r.MinArd()->ard_ps / base;

      // Worst sink slew of the min-cost solution, via the moment engine.
      const msn::TradeoffPoint* p = r.MinCost();
      double worst = 0.0;
      for (std::size_t u = 0; u < tree.NumTerminals(); ++u) {
        const msn::SourceMoments m = msn::ComputeSourceMoments(
            tree, u, p->repeaters, p->drivers, tech);
        for (std::size_t s = 0; s < tree.NumTerminals(); ++s) {
          if (s == u) continue;
          const msn::NodeId v = tree.TerminalNode(s);
          worst = std::max(worst, msn::SlewEstimate(m.m1[v], m.m2[v]));
        }
      }
      slew += worst;
    }
    const double k = static_cast<double>(feasible);
    t.AddRow({bound == 0.0 ? "unbounded" : TablePrinter::Num(bound, 0),
              TablePrinter::Num(cost / k, 2), TablePrinter::Num(reps / k, 1),
              TablePrinter::Num(diam / k, 3),
              TablePrinter::Num(slew / k, 0)});
  }
  t.Print(std::cout);
  std::cout << "\nexpected shape: tighter stage bounds raise the minimum"
               " cost (repeaters become mandatory) and directly cut the"
               " worst sink transition time; moderate bounds barely touch"
               " the achievable diameter, while aggressive ones (1500 um)"
               " start trading diameter for slew — mandatory buffering"
               " outlaws the fast long unbuffered stretches.\n";
  return 0;
}
