// Scenario: timing sign-off diagnostics on an optimized bus.
//
// After optimization a designer wants to know *why* the critical path is
// critical and how trustworthy the Elmore numbers are.  This example
// optimizes a 9-terminal net, then:
//   1. traces the critical source-to-sink path with per-node arrivals,
//   2. re-scores every source/sink pair under the two-moment D2M metric
//      (Elmore is a provable upper bound; D2M corrects its pessimism),
//   3. prints the per-stage moments along the critical path.
#include <iostream>

#include "core/ard.h"
#include "core/msri.h"
#include "elmore/moments.h"
#include "io/table.h"
#include "netgen/netgen.h"
#include "tech/tech.h"

int main() {
  const msn::Technology tech = msn::DefaultTechnology();
  msn::NetConfig cfg;
  cfg.seed = 23;
  cfg.num_terminals = 9;
  const msn::RcTree tree = msn::BuildExperimentNet(cfg, tech);

  const msn::MsriResult result = msn::RunMsri(tree, tech);
  const msn::TradeoffPoint* best = result.MinArd();
  const msn::ArdResult ard =
      msn::ComputeArd(tree, best->repeaters, best->drivers, tech);

  std::cout << "=== timing diagnostics after optimization ===\n"
            << "optimized ARD " << ard.ard_ps << " ps with "
            << best->num_repeaters << " repeaters (cost " << best->cost
            << ")\n\n";

  // 1. Critical path trace.
  const msn::CriticalPath path = msn::TraceCriticalPath(
      tree, ard, best->repeaters, best->drivers, tech);
  std::cout << "critical path: terminal " << path.source_terminal << " -> "
            << path.sink_terminal << " (" << path.nodes.size()
            << " nodes, total " << path.total_ps << " ps)\n";
  const msn::SourceMoments moments = msn::ComputeSourceMoments(
      tree, path.source_terminal, best->repeaters, best->drivers, tech);

  msn::TablePrinter t({"node", "kind", "arrival (ps)", "step (ps)",
                       "D2M est (ps)", "stage m1", "stage 2*m2/m1^2"});
  double prev = path.arrival_ps.front();
  for (std::size_t i = 0; i < path.nodes.size(); ++i) {
    const msn::NodeId v = path.nodes[i];
    const char* kind = "steiner";
    if (tree.Node(v).kind == msn::NodeKind::kTerminal) kind = "terminal";
    if (tree.Node(v).kind == msn::NodeKind::kInsertion) {
      kind = best->repeaters.Has(v) ? "REPEATER" : "insertion";
    }
    const double m1 = moments.m1[v];
    const double shape =
        m1 > 0.0 ? 2.0 * moments.m2[v] / (m1 * m1) : 0.0;
    t.AddRow({std::to_string(v), kind,
              msn::TablePrinter::Num(path.arrival_ps[i], 1),
              msn::TablePrinter::Num(path.arrival_ps[i] - prev, 1),
              msn::TablePrinter::Num(moments.delay_ps[v], 1),
              msn::TablePrinter::Num(m1, 1),
              msn::TablePrinter::Num(shape, 2)});
    prev = path.arrival_ps[i];
  }
  t.Print(std::cout);
  std::cout << "(2*m2/m1^2 = 1 means a first-order stage response; larger"
               " values mean a longer resistive tail)\n\n";

  // 2. Model sensitivity on the whole net.
  const msn::ArdResult d2m = msn::ComputeArdD2M(
      tree, best->repeaters, best->drivers, tech);
  std::cout << "whole-net diameter: Elmore " << ard.ard_ps << " ps, D2M "
            << d2m.ard_ps << " ps ("
            << msn::TablePrinter::Num(100.0 * d2m.ard_ps / ard.ard_ps, 1)
            << "% of Elmore)\n";
  if (d2m.HasPair() && (d2m.critical_source != ard.critical_source ||
                        d2m.critical_sink != ard.critical_sink)) {
    std::cout << "note: the critical pair differs under D2M ("
              << d2m.critical_source << " -> " << d2m.critical_sink
              << ") — worth a second look before sign-off.\n";
  } else {
    std::cout << "the critical pair agrees across both delay models.\n";
  }
  return 0;
}
