// Scenario: exploring how the cost/performance tradeoff scales with net
// size — the data a physical-design flow would use to budget repeater area
// per bus.
//
// For growing terminal counts we dump the full Pareto frontier as CSV
// (ready for plotting) and report the marginal delay improvement per unit
// cost, showing the diminishing returns the paper's Fig. 11 suite hints
// at.
#include <iostream>

#include "core/ard.h"
#include "core/msri.h"
#include "netgen/netgen.h"
#include "tech/tech.h"

int main() {
  const msn::Technology tech = msn::DefaultTechnology();

  std::cout << "net_size,seed,cost,num_repeaters,ard_ps,ard_vs_base\n";
  for (const std::size_t n : {std::size_t{5}, std::size_t{10},
                              std::size_t{15}, std::size_t{20}}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      msn::NetConfig cfg;
      cfg.seed = seed;
      cfg.num_terminals = n;
      const msn::RcTree tree = msn::BuildExperimentNet(cfg, tech);
      const double base = msn::ComputeArd(tree, tech).ard_ps;
      const msn::MsriResult result = msn::RunMsri(tree, tech);
      for (const msn::TradeoffPoint& p : result.Pareto()) {
        std::cout << n << ',' << seed << ',' << p.cost << ','
                  << p.num_repeaters << ',' << p.ard_ps << ','
                  << p.ard_ps / base << '\n';
      }
    }
  }

  // Marginal-return summary for one representative net.
  std::cerr << "\nmarginal returns (10-terminal net, seed 1):\n";
  msn::NetConfig cfg;
  cfg.seed = 1;
  cfg.num_terminals = 10;
  const msn::RcTree tree = msn::BuildExperimentNet(cfg, tech);
  const msn::MsriResult result = msn::RunMsri(tree, tech);
  const auto& pareto = result.Pareto();
  for (std::size_t i = 1; i < pareto.size(); ++i) {
    const double dcost = pareto[i].cost - pareto[i - 1].cost;
    const double dd = pareto[i - 1].ard_ps - pareto[i].ard_ps;
    std::cerr << "  +" << dcost << " cost -> -" << dd << " ps  ("
              << dd / dcost << " ps per unit cost)\n";
  }
  std::cerr << "expected: large early gains that taper off overall —"
               " individual steps can wobble (each repeater reshapes the"
               " critical path) but the last steps buy an order of"
               " magnitude less than the first.\n";
  return 0;
}
