// Scenario: a shared data bus between a CPU, a DMA engine, and two memory
// banks — the kind of multi-master net the paper's introduction motivates
// ("buses are so prevalent in modern designs").
//
// The four agents have asymmetric timing: the CPU and DMA master the bus
// (sources with real arrival times), the memory banks mostly answer reads
// (sinks with downstream decode delay) but also drive read data back.
// We optimize under the min-cost-subject-to-spec formulation and show how
// the required repeater budget grows as the spec tightens.
#include <iostream>

#include "core/ard.h"
#include "core/msri.h"
#include "io/report.h"
#include "io/table.h"
#include "rctree/rctree.h"
#include "steiner/one_steiner.h"
#include "tech/tech.h"

int main() {
  const msn::Technology tech = msn::DefaultTechnology();

  // Floorplan positions (um) of the four bus agents on a ~1 cm die.
  const std::vector<msn::Point> pads = {
      {500, 500},     // CPU
      {9000, 1200},   // DMA engine
      {1500, 8200},   // memory bank 0
      {8800, 8800},   // memory bank 1
  };
  const char* names[] = {"cpu", "dma", "mem0", "mem1"};

  // Asymmetric roles: masters arrive late (deep PI cones); memories add
  // decode delay on the way out.
  msn::TerminalParams cpu = msn::DefaultTerminal(tech);
  cpu.arrival_ps = 320.0;
  cpu.downstream_ps = 40.0;
  msn::TerminalParams dma = msn::DefaultTerminal(tech);
  dma.arrival_ps = 150.0;
  dma.downstream_ps = 60.0;
  msn::TerminalParams mem = msn::DefaultTerminal(tech);
  mem.arrival_ps = 80.0;    // Read-data launch is shallow.
  mem.downstream_ps = 210.0;  // Decode + array access on arrival.

  const msn::SteinerTree topo = msn::IteratedOneSteiner(pads);
  msn::RcTree tree = msn::RcTree::FromSteinerTree(
      topo, tech.wire, {cpu, dma, mem, mem});
  tree.AddInsertionPoints(800.0);
  tree.Validate();

  std::cout << "=== multi-master bus optimization ===\n";
  msn::DescribeNet(std::cout, tree);

  const msn::ArdResult base = msn::ComputeArd(tree, tech);
  std::cout << "\nunoptimized augmented diameter: " << base.ard_ps
            << " ps\n  critical path: " << names[base.critical_source]
            << " -> " << names[base.critical_sink] << "\n\n";

  const msn::MsriResult result = msn::RunMsri(tree, tech);

  // Sweep the spec from the base diameter down to the achievable optimum.
  msn::TablePrinter t({"spec (ps)", "feasible", "cost", "#repeaters",
                       "achieved ARD (ps)", "critical path"});
  const double best = result.MinArd()->ard_ps;
  for (double f : {1.0, 0.9, 0.8, 0.7, 0.6, 0.5}) {
    const double spec = base.ard_ps * f;
    const msn::TradeoffPoint* p = result.MinCostFeasible(spec);
    if (p == nullptr) {
      t.AddRow({msn::TablePrinter::Num(spec, 0), "no", "-", "-",
                msn::TablePrinter::Num(best, 0) + " best", "-"});
      continue;
    }
    const msn::ArdResult ard =
        msn::ComputeArd(tree, p->repeaters, p->drivers, tech);
    t.AddRow({msn::TablePrinter::Num(spec, 0), "yes",
              msn::TablePrinter::Num(p->cost, 0),
              std::to_string(p->num_repeaters),
              msn::TablePrinter::Num(ard.ard_ps, 0),
              std::string(names[ard.critical_source]) + "->" +
                  names[ard.critical_sink]});
  }
  t.Print(std::cout);

  std::cout << "\nbest achievable layout ("
            << result.MinArd()->num_repeaters << " repeaters):\n"
            << msn::RenderAscii(tree, result.MinArd()->repeaters, 60, 24);
  return 0;
}
