// Scenario: splitting a block's repeater-area budget across its buses.
//
// A block has five multisource nets of different sizes and a fixed
// repeater budget.  Because the optimizer returns each net's whole
// cost-vs-ARD Pareto suite (the paper's "suite of solutions" design
// goal), the flow layer can allocate globally:
//   - min-max: equalize the worst bus (clock-period-like objective),
//   - min-sum: best average (throughput-like objective),
// and show how the allocation shifts as the budget grows.
#include <iostream>

#include "core/msri.h"
#include "flow/budget.h"
#include "io/table.h"
#include "netgen/netgen.h"
#include "tech/tech.h"

int main() {
  const msn::Technology tech = msn::DefaultTechnology();

  // Five buses: two small, two medium, one large.
  const std::size_t sizes[] = {4, 5, 8, 10, 14};
  std::vector<msn::Frontier> frontiers;
  double min_cost = 0.0;
  std::cout << "=== chip-level repeater budgeting ===\n";
  for (std::size_t k = 0; k < 5; ++k) {
    msn::NetConfig cfg;
    cfg.seed = 40 + k;
    cfg.num_terminals = sizes[k];
    const msn::RcTree tree = msn::BuildExperimentNet(cfg, tech);
    const msn::MsriResult r = msn::RunMsri(tree, tech);
    frontiers.push_back(msn::FrontierOf(r));
    min_cost += frontiers.back().front().cost;
    std::cout << "net " << k << ": " << sizes[k] << " terminals, frontier "
              << frontiers.back().size() << " points, ARD range ["
              << frontiers.back().back().delay_ps << ", "
              << frontiers.back().front().delay_ps << "] ps\n";
  }
  std::cout << "minimum total cost (no repeaters): " << min_cost << "\n\n";

  msn::TablePrinter t({"extra budget", "minmax worst", "minmax spend",
                       "minsum avg", "minsum worst", "per-net (minmax)"});
  for (const double extra : {0.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    const double budget = min_cost + extra;
    const auto mm = msn::AllocateMinMax(frontiers, budget);
    const auto ms = msn::AllocateMinSum(frontiers, budget);
    if (!mm || !ms) continue;
    std::string split;
    for (std::size_t k = 0; k < frontiers.size(); ++k) {
      const double spent = frontiers[k][mm->choice[k]].cost -
                           frontiers[k].front().cost;
      split += (k ? "/" : "") + msn::TablePrinter::Num(spent, 0);
    }
    t.AddRow({msn::TablePrinter::Num(extra, 0),
              msn::TablePrinter::Num(mm->worst_delay_ps, 0),
              msn::TablePrinter::Num(mm->total_cost - min_cost, 0),
              msn::TablePrinter::Num(ms->sum_delay_ps / 5.0, 0),
              msn::TablePrinter::Num(ms->worst_delay_ps, 0), split});
  }
  t.Print(std::cout);
  std::cout << "\nreading the table: min-max pours budget into the worst"
               " (largest) bus first; min-sum spreads it where the\n"
               "marginal ps-per-cost is best — the two objectives diverge"
               " exactly as a flow engineer would expect.\n";
  return 0;
}
