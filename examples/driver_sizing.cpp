// Scenario: the discrete driver-sizing mode (paper Section V: the repeater
// algorithm "can also solve the driver sizing problem").
//
// For a star-shaped clock-spine-like net we compare three strategies:
//   1. driver sizing only (1X..4X drivers and receivers per terminal),
//   2. repeater insertion only,
//   3. both together,
// and print each Pareto frontier, illustrating the paper's conclusion that
// repeaters dominate sizing on resistive nets while the joint mode wins
// outright.
#include <iostream>

#include "core/ard.h"
#include "core/msri.h"
#include "io/table.h"
#include "netgen/netgen.h"
#include "tech/tech.h"

namespace {

void PrintFrontier(const char* title, const msn::MsriResult& r,
                   double base_diam) {
  std::cout << title << '\n';
  msn::TablePrinter t({"cost", "#rep", "ARD (ps)", "vs base"});
  for (const msn::TradeoffPoint& p : r.Pareto()) {
    t.AddRow({msn::TablePrinter::Num(p.cost, 0),
              std::to_string(p.num_repeaters),
              msn::TablePrinter::Num(p.ard_ps, 1),
              msn::TablePrinter::Num(p.ard_ps / base_diam, 2)});
  }
  t.Print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  const msn::Technology tech = msn::DefaultTechnology();

  msn::NetConfig cfg;
  cfg.seed = 17;
  cfg.num_terminals = 8;
  const msn::RcTree tree = msn::BuildExperimentNet(cfg, tech);

  const double base = msn::ComputeArd(tree, tech).ard_ps;
  std::cout << "=== driver sizing vs repeater insertion vs joint ===\n"
            << "8-terminal net, base diameter " << base << " ps\n\n";

  const auto lib = msn::DriverSizingLibrary(tech, {1.0, 2.0, 3.0, 4.0});

  msn::MsriOptions sizing_only;
  sizing_only.insert_repeaters = false;
  sizing_only.size_drivers = true;
  sizing_only.sizing_library = lib;
  PrintFrontier("--- driver sizing only (16 realizations/terminal) ---",
                msn::RunMsri(tree, tech, sizing_only), base);

  PrintFrontier("--- repeater insertion only ---", msn::RunMsri(tree, tech),
                base);

  msn::MsriOptions joint;
  joint.size_drivers = true;
  joint.sizing_library = lib;
  const msn::MsriResult both = msn::RunMsri(tree, tech, joint);
  PrintFrontier("--- joint sizing + repeaters ---", both, base);

  const msn::TradeoffPoint* bp = both.MinArd();
  std::cout << "joint optimum uses " << bp->num_repeaters
            << " repeaters and these non-default drivers:\n";
  for (std::size_t t = 0; t < bp->drivers.NumTerminals(); ++t) {
    if (bp->drivers.At(t)) {
      std::cout << "  terminal " << t << ": " << bp->drivers.At(t)->name
                << '\n';
    }
  }
  return 0;
}
