// Quickstart: build a small multisource net, measure its augmented
// RC-diameter, and run optimal repeater insertion.
//
//   $ ./quickstart
//
// Walks through the library's three core steps:
//   1. describe the technology and the net (an RcTree),
//   2. evaluate timing with the linear-time ARD engine,
//   3. optimize with the MSRI dynamic program and inspect the
//      cost-versus-delay tradeoff suite.
#include <iostream>

#include "core/ard.h"
#include "core/msri.h"
#include "io/report.h"
#include "rctree/rctree.h"
#include "tech/tech.h"

int main() {
  // 1. Technology: Table-I wire parasitics plus one repeater type built
  //    from a pair of 1X buffers.
  const msn::Technology tech = msn::DefaultTechnology();

  // A three-terminal bus: two terminals at the ends of a 6 mm trunk and
  // one hanging off the middle.  Every terminal both drives and receives
  // (TerminalParams defaults), with repeater candidate sites every ~800um.
  msn::RcTree tree(tech.wire);
  const msn::TerminalParams pin = msn::DefaultTerminal(tech);
  const msn::NodeId a = tree.AddTerminal(pin, {0, 0});
  const msn::NodeId mid = tree.AddNode(msn::NodeKind::kSteiner, {3000, 0});
  const msn::NodeId b = tree.AddTerminal(pin, {6000, 0});
  const msn::NodeId c = tree.AddTerminal(pin, {3000, 2500});
  tree.AddEdge(a, mid, 3000.0);
  tree.AddEdge(mid, b, 3000.0);
  tree.AddEdge(mid, c, 2500.0);
  tree.AddInsertionPoints(800.0);
  tree.Validate();

  msn::DescribeNet(std::cout, tree);

  // 2. Timing before optimization: the augmented RC-diameter is the worst
  //    source-to-sink Elmore delay over all terminal pairs (Def. 2.1),
  //    computed in O(n) by the Fig. 2 algorithm.
  const msn::ArdResult before = msn::ComputeArd(tree, tech);
  std::cout << "\nunoptimized ARD: " << before.ard_ps
            << " ps (critical: terminal " << before.critical_source
            << " -> terminal " << before.critical_sink << ")\n";

  // 3. Optimal repeater insertion (Problem 2.1).  The result is the whole
  //    Pareto frontier; each point carries a materialized assignment.
  const msn::MsriResult result = msn::RunMsri(tree, tech);

  std::cout << "\ncost vs ARD tradeoff suite:\n";
  for (const msn::TradeoffPoint& p : result.Pareto()) {
    std::cout << "  cost " << p.cost << " (" << p.num_repeaters
              << " repeaters): " << p.ard_ps << " ps\n";
  }

  // "Min cost subject to a timing spec": aim halfway between the base
  // diameter and the achievable optimum (always feasible).
  const double spec = (before.ard_ps + result.MinArd()->ard_ps) / 2.0;
  if (const msn::TradeoffPoint* pick = result.MinCostFeasible(spec)) {
    std::cout << "\ncheapest solution meeting ARD <= " << spec << " ps:\n";
    const msn::ArdResult ard =
        msn::ComputeArd(tree, pick->repeaters, pick->drivers, tech);
    msn::DescribeSolution(std::cout, tree, tech, *pick, ard);
    std::cout << '\n' << msn::RenderAscii(tree, pick->repeaters, 60, 14);
  }
  return 0;
}
