file(REMOVE_RECURSE
  "CMakeFiles/transient_test.dir/transient_test.cc.o"
  "CMakeFiles/transient_test.dir/transient_test.cc.o.d"
  "transient_test"
  "transient_test.pdb"
  "transient_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transient_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
