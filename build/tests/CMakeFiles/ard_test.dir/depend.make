# Empty dependencies file for ard_test.
# This may be replaced when dependencies are built.
