file(REMOVE_RECURSE
  "CMakeFiles/ard_test.dir/ard_test.cc.o"
  "CMakeFiles/ard_test.dir/ard_test.cc.o.d"
  "ard_test"
  "ard_test.pdb"
  "ard_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
