# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for van_ginneken_test.
