# Empty dependencies file for van_ginneken_test.
# This may be replaced when dependencies are built.
