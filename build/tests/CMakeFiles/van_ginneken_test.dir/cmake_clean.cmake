file(REMOVE_RECURSE
  "CMakeFiles/van_ginneken_test.dir/van_ginneken_test.cc.o"
  "CMakeFiles/van_ginneken_test.dir/van_ginneken_test.cc.o.d"
  "van_ginneken_test"
  "van_ginneken_test.pdb"
  "van_ginneken_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/van_ginneken_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
