# Empty compiler generated dependencies file for msri_test.
# This may be replaced when dependencies are built.
