file(REMOVE_RECURSE
  "CMakeFiles/msri_test.dir/msri_test.cc.o"
  "CMakeFiles/msri_test.dir/msri_test.cc.o.d"
  "msri_test"
  "msri_test.pdb"
  "msri_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msri_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
