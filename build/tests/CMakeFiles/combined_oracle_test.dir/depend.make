# Empty dependencies file for combined_oracle_test.
# This may be replaced when dependencies are built.
