file(REMOVE_RECURSE
  "CMakeFiles/combined_oracle_test.dir/combined_oracle_test.cc.o"
  "CMakeFiles/combined_oracle_test.dir/combined_oracle_test.cc.o.d"
  "combined_oracle_test"
  "combined_oracle_test.pdb"
  "combined_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/combined_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
