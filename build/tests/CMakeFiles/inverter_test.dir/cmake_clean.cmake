file(REMOVE_RECURSE
  "CMakeFiles/inverter_test.dir/inverter_test.cc.o"
  "CMakeFiles/inverter_test.dir/inverter_test.cc.o.d"
  "inverter_test"
  "inverter_test.pdb"
  "inverter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inverter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
