# Empty compiler generated dependencies file for inverter_test.
# This may be replaced when dependencies are built.
