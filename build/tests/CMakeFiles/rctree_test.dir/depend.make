# Empty dependencies file for rctree_test.
# This may be replaced when dependencies are built.
