file(REMOVE_RECURSE
  "CMakeFiles/rctree_test.dir/rctree_test.cc.o"
  "CMakeFiles/rctree_test.dir/rctree_test.cc.o.d"
  "rctree_test"
  "rctree_test.pdb"
  "rctree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rctree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
