file(REMOVE_RECURSE
  "CMakeFiles/netgen_io_test.dir/netgen_io_test.cc.o"
  "CMakeFiles/netgen_io_test.dir/netgen_io_test.cc.o.d"
  "netgen_io_test"
  "netgen_io_test.pdb"
  "netgen_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netgen_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
