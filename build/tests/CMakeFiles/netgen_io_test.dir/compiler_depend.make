# Empty compiler generated dependencies file for netgen_io_test.
# This may be replaced when dependencies are built.
