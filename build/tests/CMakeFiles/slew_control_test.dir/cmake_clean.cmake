file(REMOVE_RECURSE
  "CMakeFiles/slew_control_test.dir/slew_control_test.cc.o"
  "CMakeFiles/slew_control_test.dir/slew_control_test.cc.o.d"
  "slew_control_test"
  "slew_control_test.pdb"
  "slew_control_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slew_control_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
