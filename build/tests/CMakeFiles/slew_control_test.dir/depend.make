# Empty dependencies file for slew_control_test.
# This may be replaced when dependencies are built.
