file(REMOVE_RECURSE
  "CMakeFiles/netfile_test.dir/netfile_test.cc.o"
  "CMakeFiles/netfile_test.dir/netfile_test.cc.o.d"
  "netfile_test"
  "netfile_test.pdb"
  "netfile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netfile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
