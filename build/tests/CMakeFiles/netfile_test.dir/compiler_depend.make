# Empty compiler generated dependencies file for netfile_test.
# This may be replaced when dependencies are built.
