file(REMOVE_RECURSE
  "CMakeFiles/pwl_test.dir/pwl_test.cc.o"
  "CMakeFiles/pwl_test.dir/pwl_test.cc.o.d"
  "pwl_test"
  "pwl_test.pdb"
  "pwl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pwl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
