
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/timing_diagnostics.cpp" "examples/CMakeFiles/timing_diagnostics.dir/timing_diagnostics.cpp.o" "gcc" "examples/CMakeFiles/timing_diagnostics.dir/timing_diagnostics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/msn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/msn_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/msn_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/netgen/CMakeFiles/msn_netgen.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/msn_io.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/msn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/elmore/CMakeFiles/msn_elmore.dir/DependInfo.cmake"
  "/root/repo/build/src/rctree/CMakeFiles/msn_rctree.dir/DependInfo.cmake"
  "/root/repo/build/src/steiner/CMakeFiles/msn_steiner.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/msn_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/msn_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/msn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
