file(REMOVE_RECURSE
  "CMakeFiles/timing_diagnostics.dir/timing_diagnostics.cpp.o"
  "CMakeFiles/timing_diagnostics.dir/timing_diagnostics.cpp.o.d"
  "timing_diagnostics"
  "timing_diagnostics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_diagnostics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
