# Empty compiler generated dependencies file for timing_diagnostics.
# This may be replaced when dependencies are built.
