# Empty compiler generated dependencies file for driver_sizing.
# This may be replaced when dependencies are built.
