file(REMOVE_RECURSE
  "CMakeFiles/driver_sizing.dir/driver_sizing.cpp.o"
  "CMakeFiles/driver_sizing.dir/driver_sizing.cpp.o.d"
  "driver_sizing"
  "driver_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/driver_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
