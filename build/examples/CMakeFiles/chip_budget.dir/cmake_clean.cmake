file(REMOVE_RECURSE
  "CMakeFiles/chip_budget.dir/chip_budget.cpp.o"
  "CMakeFiles/chip_budget.dir/chip_budget.cpp.o.d"
  "chip_budget"
  "chip_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chip_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
