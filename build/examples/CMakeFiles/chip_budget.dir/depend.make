# Empty dependencies file for chip_budget.
# This may be replaced when dependencies are built.
