file(REMOVE_RECURSE
  "CMakeFiles/bus_optimization.dir/bus_optimization.cpp.o"
  "CMakeFiles/bus_optimization.dir/bus_optimization.cpp.o.d"
  "bus_optimization"
  "bus_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bus_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
