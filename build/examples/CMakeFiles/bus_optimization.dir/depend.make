# Empty dependencies file for bus_optimization.
# This may be replaced when dependencies are built.
