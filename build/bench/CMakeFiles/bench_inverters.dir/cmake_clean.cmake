file(REMOVE_RECURSE
  "CMakeFiles/bench_inverters.dir/bench_inverters.cc.o"
  "CMakeFiles/bench_inverters.dir/bench_inverters.cc.o.d"
  "bench_inverters"
  "bench_inverters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inverters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
