# Empty dependencies file for bench_inverters.
# This may be replaced when dependencies are built.
