# Empty compiler generated dependencies file for bench_asymmetry.
# This may be replaced when dependencies are built.
