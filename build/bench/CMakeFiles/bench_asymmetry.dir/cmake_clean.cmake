file(REMOVE_RECURSE
  "CMakeFiles/bench_asymmetry.dir/bench_asymmetry.cc.o"
  "CMakeFiles/bench_asymmetry.dir/bench_asymmetry.cc.o.d"
  "bench_asymmetry"
  "bench_asymmetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_asymmetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
