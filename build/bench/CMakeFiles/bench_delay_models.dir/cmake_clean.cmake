file(REMOVE_RECURSE
  "CMakeFiles/bench_delay_models.dir/bench_delay_models.cc.o"
  "CMakeFiles/bench_delay_models.dir/bench_delay_models.cc.o.d"
  "bench_delay_models"
  "bench_delay_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_delay_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
