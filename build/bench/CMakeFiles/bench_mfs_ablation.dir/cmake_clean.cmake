file(REMOVE_RECURSE
  "CMakeFiles/bench_mfs_ablation.dir/bench_mfs_ablation.cc.o"
  "CMakeFiles/bench_mfs_ablation.dir/bench_mfs_ablation.cc.o.d"
  "bench_mfs_ablation"
  "bench_mfs_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mfs_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
