# Empty dependencies file for bench_mfs_ablation.
# This may be replaced when dependencies are built.
