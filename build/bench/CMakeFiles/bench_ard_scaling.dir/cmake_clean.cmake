file(REMOVE_RECURSE
  "CMakeFiles/bench_ard_scaling.dir/bench_ard_scaling.cc.o"
  "CMakeFiles/bench_ard_scaling.dir/bench_ard_scaling.cc.o.d"
  "bench_ard_scaling"
  "bench_ard_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ard_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
