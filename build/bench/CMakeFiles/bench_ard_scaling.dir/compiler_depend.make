# Empty compiler generated dependencies file for bench_ard_scaling.
# This may be replaced when dependencies are built.
