# Empty dependencies file for bench_slew.
# This may be replaced when dependencies are built.
