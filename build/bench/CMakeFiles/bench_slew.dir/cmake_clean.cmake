file(REMOVE_RECURSE
  "CMakeFiles/bench_slew.dir/bench_slew.cc.o"
  "CMakeFiles/bench_slew.dir/bench_slew.cc.o.d"
  "bench_slew"
  "bench_slew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_slew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
