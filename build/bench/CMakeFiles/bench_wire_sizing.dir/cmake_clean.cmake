file(REMOVE_RECURSE
  "CMakeFiles/bench_wire_sizing.dir/bench_wire_sizing.cc.o"
  "CMakeFiles/bench_wire_sizing.dir/bench_wire_sizing.cc.o.d"
  "bench_wire_sizing"
  "bench_wire_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wire_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
