# Empty dependencies file for bench_wire_sizing.
# This may be replaced when dependencies are built.
