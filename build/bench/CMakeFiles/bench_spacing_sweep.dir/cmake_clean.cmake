file(REMOVE_RECURSE
  "CMakeFiles/bench_spacing_sweep.dir/bench_spacing_sweep.cc.o"
  "CMakeFiles/bench_spacing_sweep.dir/bench_spacing_sweep.cc.o.d"
  "bench_spacing_sweep"
  "bench_spacing_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spacing_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
