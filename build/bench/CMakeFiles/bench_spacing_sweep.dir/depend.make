# Empty dependencies file for bench_spacing_sweep.
# This may be replaced when dependencies are built.
