# Empty dependencies file for bench_set_growth.
# This may be replaced when dependencies are built.
