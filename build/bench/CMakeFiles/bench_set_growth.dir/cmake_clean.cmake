file(REMOVE_RECURSE
  "CMakeFiles/bench_set_growth.dir/bench_set_growth.cc.o"
  "CMakeFiles/bench_set_growth.dir/bench_set_growth.cc.o.d"
  "bench_set_growth"
  "bench_set_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_set_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
