file(REMOVE_RECURSE
  "libmsn_flow.a"
)
