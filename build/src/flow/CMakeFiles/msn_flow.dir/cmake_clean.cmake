file(REMOVE_RECURSE
  "CMakeFiles/msn_flow.dir/budget.cc.o"
  "CMakeFiles/msn_flow.dir/budget.cc.o.d"
  "CMakeFiles/msn_flow.dir/refine.cc.o"
  "CMakeFiles/msn_flow.dir/refine.cc.o.d"
  "libmsn_flow.a"
  "libmsn_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msn_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
