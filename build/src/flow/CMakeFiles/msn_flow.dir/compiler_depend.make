# Empty compiler generated dependencies file for msn_flow.
# This may be replaced when dependencies are built.
