# Empty dependencies file for msn_sim.
# This may be replaced when dependencies are built.
