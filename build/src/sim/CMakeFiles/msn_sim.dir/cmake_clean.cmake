file(REMOVE_RECURSE
  "CMakeFiles/msn_sim.dir/transient.cc.o"
  "CMakeFiles/msn_sim.dir/transient.cc.o.d"
  "libmsn_sim.a"
  "libmsn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
