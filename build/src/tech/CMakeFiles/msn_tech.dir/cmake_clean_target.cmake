file(REMOVE_RECURSE
  "libmsn_tech.a"
)
