# Empty dependencies file for msn_tech.
# This may be replaced when dependencies are built.
