file(REMOVE_RECURSE
  "CMakeFiles/msn_tech.dir/tech.cc.o"
  "CMakeFiles/msn_tech.dir/tech.cc.o.d"
  "libmsn_tech.a"
  "libmsn_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msn_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
