file(REMOVE_RECURSE
  "libmsn_netgen.a"
)
