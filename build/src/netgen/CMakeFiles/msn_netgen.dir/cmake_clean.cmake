file(REMOVE_RECURSE
  "CMakeFiles/msn_netgen.dir/netgen.cc.o"
  "CMakeFiles/msn_netgen.dir/netgen.cc.o.d"
  "libmsn_netgen.a"
  "libmsn_netgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msn_netgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
