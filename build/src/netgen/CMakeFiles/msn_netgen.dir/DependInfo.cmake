
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netgen/netgen.cc" "src/netgen/CMakeFiles/msn_netgen.dir/netgen.cc.o" "gcc" "src/netgen/CMakeFiles/msn_netgen.dir/netgen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/msn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/msn_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/rctree/CMakeFiles/msn_rctree.dir/DependInfo.cmake"
  "/root/repo/build/src/steiner/CMakeFiles/msn_steiner.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/msn_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
