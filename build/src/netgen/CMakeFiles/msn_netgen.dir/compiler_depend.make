# Empty compiler generated dependencies file for msn_netgen.
# This may be replaced when dependencies are built.
