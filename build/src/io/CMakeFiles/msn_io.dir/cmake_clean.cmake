file(REMOVE_RECURSE
  "CMakeFiles/msn_io.dir/netfile.cc.o"
  "CMakeFiles/msn_io.dir/netfile.cc.o.d"
  "CMakeFiles/msn_io.dir/report.cc.o"
  "CMakeFiles/msn_io.dir/report.cc.o.d"
  "CMakeFiles/msn_io.dir/table.cc.o"
  "CMakeFiles/msn_io.dir/table.cc.o.d"
  "libmsn_io.a"
  "libmsn_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msn_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
