file(REMOVE_RECURSE
  "libmsn_io.a"
)
