# Empty compiler generated dependencies file for msn_io.
# This may be replaced when dependencies are built.
