file(REMOVE_RECURSE
  "libmsn_elmore.a"
)
