file(REMOVE_RECURSE
  "CMakeFiles/msn_elmore.dir/caps.cc.o"
  "CMakeFiles/msn_elmore.dir/caps.cc.o.d"
  "CMakeFiles/msn_elmore.dir/delay.cc.o"
  "CMakeFiles/msn_elmore.dir/delay.cc.o.d"
  "CMakeFiles/msn_elmore.dir/moments.cc.o"
  "CMakeFiles/msn_elmore.dir/moments.cc.o.d"
  "CMakeFiles/msn_elmore.dir/pairwise.cc.o"
  "CMakeFiles/msn_elmore.dir/pairwise.cc.o.d"
  "libmsn_elmore.a"
  "libmsn_elmore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msn_elmore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
