# Empty dependencies file for msn_elmore.
# This may be replaced when dependencies are built.
