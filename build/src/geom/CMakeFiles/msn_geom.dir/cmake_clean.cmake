file(REMOVE_RECURSE
  "CMakeFiles/msn_geom.dir/hanan.cc.o"
  "CMakeFiles/msn_geom.dir/hanan.cc.o.d"
  "libmsn_geom.a"
  "libmsn_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msn_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
