# Empty compiler generated dependencies file for msn_geom.
# This may be replaced when dependencies are built.
