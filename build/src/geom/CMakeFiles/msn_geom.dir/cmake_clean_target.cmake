file(REMOVE_RECURSE
  "libmsn_geom.a"
)
