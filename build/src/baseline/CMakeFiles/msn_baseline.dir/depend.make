# Empty dependencies file for msn_baseline.
# This may be replaced when dependencies are built.
