file(REMOVE_RECURSE
  "libmsn_baseline.a"
)
