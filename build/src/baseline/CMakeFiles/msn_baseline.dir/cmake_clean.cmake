file(REMOVE_RECURSE
  "CMakeFiles/msn_baseline.dir/brute_force.cc.o"
  "CMakeFiles/msn_baseline.dir/brute_force.cc.o.d"
  "CMakeFiles/msn_baseline.dir/greedy.cc.o"
  "CMakeFiles/msn_baseline.dir/greedy.cc.o.d"
  "CMakeFiles/msn_baseline.dir/van_ginneken.cc.o"
  "CMakeFiles/msn_baseline.dir/van_ginneken.cc.o.d"
  "libmsn_baseline.a"
  "libmsn_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msn_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
