file(REMOVE_RECURSE
  "libmsn_rctree.a"
)
