file(REMOVE_RECURSE
  "CMakeFiles/msn_rctree.dir/assignment.cc.o"
  "CMakeFiles/msn_rctree.dir/assignment.cc.o.d"
  "CMakeFiles/msn_rctree.dir/rctree.cc.o"
  "CMakeFiles/msn_rctree.dir/rctree.cc.o.d"
  "CMakeFiles/msn_rctree.dir/rooted.cc.o"
  "CMakeFiles/msn_rctree.dir/rooted.cc.o.d"
  "libmsn_rctree.a"
  "libmsn_rctree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msn_rctree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
