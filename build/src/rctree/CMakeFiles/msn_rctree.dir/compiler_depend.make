# Empty compiler generated dependencies file for msn_rctree.
# This may be replaced when dependencies are built.
