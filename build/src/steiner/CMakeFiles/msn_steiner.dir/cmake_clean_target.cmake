file(REMOVE_RECURSE
  "libmsn_steiner.a"
)
