
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/steiner/one_steiner.cc" "src/steiner/CMakeFiles/msn_steiner.dir/one_steiner.cc.o" "gcc" "src/steiner/CMakeFiles/msn_steiner.dir/one_steiner.cc.o.d"
  "/root/repo/src/steiner/prim_dijkstra.cc" "src/steiner/CMakeFiles/msn_steiner.dir/prim_dijkstra.cc.o" "gcc" "src/steiner/CMakeFiles/msn_steiner.dir/prim_dijkstra.cc.o.d"
  "/root/repo/src/steiner/ptree.cc" "src/steiner/CMakeFiles/msn_steiner.dir/ptree.cc.o" "gcc" "src/steiner/CMakeFiles/msn_steiner.dir/ptree.cc.o.d"
  "/root/repo/src/steiner/spanning.cc" "src/steiner/CMakeFiles/msn_steiner.dir/spanning.cc.o" "gcc" "src/steiner/CMakeFiles/msn_steiner.dir/spanning.cc.o.d"
  "/root/repo/src/steiner/topology.cc" "src/steiner/CMakeFiles/msn_steiner.dir/topology.cc.o" "gcc" "src/steiner/CMakeFiles/msn_steiner.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/msn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/msn_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
