# Empty dependencies file for msn_steiner.
# This may be replaced when dependencies are built.
