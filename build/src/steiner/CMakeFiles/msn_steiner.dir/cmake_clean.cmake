file(REMOVE_RECURSE
  "CMakeFiles/msn_steiner.dir/one_steiner.cc.o"
  "CMakeFiles/msn_steiner.dir/one_steiner.cc.o.d"
  "CMakeFiles/msn_steiner.dir/prim_dijkstra.cc.o"
  "CMakeFiles/msn_steiner.dir/prim_dijkstra.cc.o.d"
  "CMakeFiles/msn_steiner.dir/ptree.cc.o"
  "CMakeFiles/msn_steiner.dir/ptree.cc.o.d"
  "CMakeFiles/msn_steiner.dir/spanning.cc.o"
  "CMakeFiles/msn_steiner.dir/spanning.cc.o.d"
  "CMakeFiles/msn_steiner.dir/topology.cc.o"
  "CMakeFiles/msn_steiner.dir/topology.cc.o.d"
  "libmsn_steiner.a"
  "libmsn_steiner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msn_steiner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
