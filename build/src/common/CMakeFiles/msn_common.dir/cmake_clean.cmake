file(REMOVE_RECURSE
  "CMakeFiles/msn_common.dir/interval_set.cc.o"
  "CMakeFiles/msn_common.dir/interval_set.cc.o.d"
  "libmsn_common.a"
  "libmsn_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msn_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
