file(REMOVE_RECURSE
  "libmsn_common.a"
)
