# Empty compiler generated dependencies file for msn_common.
# This may be replaced when dependencies are built.
