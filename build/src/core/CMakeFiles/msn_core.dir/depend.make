# Empty dependencies file for msn_core.
# This may be replaced when dependencies are built.
