file(REMOVE_RECURSE
  "libmsn_core.a"
)
