file(REMOVE_RECURSE
  "CMakeFiles/msn_core.dir/ard.cc.o"
  "CMakeFiles/msn_core.dir/ard.cc.o.d"
  "CMakeFiles/msn_core.dir/mfs.cc.o"
  "CMakeFiles/msn_core.dir/mfs.cc.o.d"
  "CMakeFiles/msn_core.dir/msri.cc.o"
  "CMakeFiles/msn_core.dir/msri.cc.o.d"
  "CMakeFiles/msn_core.dir/pwl.cc.o"
  "CMakeFiles/msn_core.dir/pwl.cc.o.d"
  "libmsn_core.a"
  "libmsn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
