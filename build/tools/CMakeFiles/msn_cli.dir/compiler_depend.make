# Empty compiler generated dependencies file for msn_cli.
# This may be replaced when dependencies are built.
