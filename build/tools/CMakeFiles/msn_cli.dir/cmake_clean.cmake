file(REMOVE_RECURSE
  "CMakeFiles/msn_cli.dir/msn_cli.cc.o"
  "CMakeFiles/msn_cli.dir/msn_cli.cc.o.d"
  "msn_cli"
  "msn_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msn_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
